// Package netwire is the wire layer under distrib's TCP transport: a
// compact binary codec for event values, external inputs and per-phase
// frames, length-prefixed framing with strict bounds checking, and the
// per-link handshake + credit-window protocol that gives a real socket
// the same bounded-buffer semantics as an in-process channel
// (DESIGN.md §7).
//
// The codec is deliberately tiny and self-contained — varints and
// little-endian float bits, no reflection, no external schema — so the
// serialized form is stable, fuzzable and cheap: encoding a frame
// reuses the caller's scratch buffer and allocates nothing in steady
// state.
package netwire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/event"
)

// DefaultMaxFrame is the largest encoded frame payload a link accepts
// unless configured otherwise: past this, a length prefix is treated as
// corruption (or abuse), not data. 16 MiB fits ~2M float64 vector
// elements per phase per link — far beyond any workload in the repo.
const DefaultMaxFrame = 16 << 20

// value kind tags on the wire. These deliberately mirror event.Kind but
// are a separate namespace: the wire format is frozen by round-trip and
// fuzz tests, while event.Kind is free to evolve internally.
const (
	wireNone   = 0
	wireBool   = 1
	wireInt    = 2
	wireFloat  = 3
	wireString = 4
	wireVector = 5
)

// AppendValue appends the wire encoding of v to buf and returns the
// extended slice. All five payload kinds round-trip exactly, including
// NaN floats, empty strings and empty (but non-nil) vectors.
func AppendValue(buf []byte, v event.Value) []byte {
	switch v.Kind() {
	case event.KindNone:
		return append(buf, wireNone)
	case event.KindBool:
		b, _ := v.AsBool()
		if b {
			return append(buf, wireBool, 1)
		}
		return append(buf, wireBool, 0)
	case event.KindInt:
		i, _ := v.AsInt()
		buf = append(buf, wireInt)
		return binary.AppendVarint(buf, i)
	case event.KindFloat:
		f, _ := v.AsFloat()
		buf = append(buf, wireFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	case event.KindString:
		s, _ := v.AsString()
		buf = append(buf, wireString)
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	case event.KindVector:
		vec, _ := v.AsVector()
		buf = append(buf, wireVector)
		buf = binary.AppendUvarint(buf, uint64(len(vec)))
		for _, f := range vec {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		return buf
	default:
		panic(fmt.Sprintf("netwire: unencodable value kind %v", v.Kind()))
	}
}

// ReadValue decodes one value from the front of buf, returning the
// value and the remaining bytes. Truncated or unknown-kind input is an
// error, never a partial value.
func ReadValue(buf []byte) (event.Value, []byte, error) {
	if len(buf) == 0 {
		return event.Value{}, nil, fmt.Errorf("netwire: truncated value: missing kind")
	}
	kind, rest := buf[0], buf[1:]
	switch kind {
	case wireNone:
		return event.None(), rest, nil
	case wireBool:
		if len(rest) < 1 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated bool")
		}
		return event.Bool(rest[0] != 0), rest[1:], nil
	case wireInt:
		i, n := binary.Varint(rest)
		if n <= 0 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated int varint")
		}
		return event.Int(i), rest[n:], nil
	case wireFloat:
		if len(rest) < 8 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated float")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		return event.Float(f), rest[8:], nil
	case wireString:
		n, used := binary.Uvarint(rest)
		if used <= 0 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated string length")
		}
		rest = rest[used:]
		if uint64(len(rest)) < n {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated string: want %d bytes, have %d", n, len(rest))
		}
		return event.String(string(rest[:n])), rest[n:], nil
	case wireVector:
		n, used := binary.Uvarint(rest)
		if used <= 0 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated vector length")
		}
		rest = rest[used:]
		if uint64(len(rest)) < n*8 || n > uint64(len(rest)) {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated vector: want %d elements, have %d bytes", n, len(rest))
		}
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
		}
		return event.Vector(vec), rest[n*8:], nil
	default:
		return event.Value{}, nil, fmt.Errorf("netwire: unknown value kind %d", kind)
	}
}

// Frame kinds on the wire. Data frames carry one phase's external
// inputs; every other kind is control plane. FrameBarrier and
// FrameSnapshot travel on data links during an epoch switch
// (DESIGN.md §8); kinds FramePoll onward travel only on control
// channels — the coordinator/participant protocol that lets separate
// worker processes rebalance mid-run (DESIGN.md §9).
const (
	// FrameData is a per-phase data frame: Phase plus Inputs.
	FrameData = 0
	// FrameBarrier is an epoch-quiesce announcement: Phase names the
	// barrier (the last phase of the closing epoch); no payload. On a
	// control channel it is the coordinator's quiesce command: the
	// participant's head machines must stop after Phase.
	FrameBarrier = 1
	// FrameSnapshot is a state-handoff frame: Phase names the barrier
	// it follows and Snaps carries the migrating vertices' state. On a
	// control channel it flows both ways: participants ship the state
	// of vertices leaving them to the coordinator, and the coordinator
	// delivers the state of vertices arriving (an empty snapshot doubles
	// as the "start the epoch" release).
	FrameSnapshot = 2
	// FramePoll asks a participant for progress (coordinator →
	// participant; no payload beyond the epoch tag).
	FramePoll = 3
	// FrameProgress answers a poll or a pause: Phase is the newest
	// phase the participant's head machines opened, Done reports its
	// machines finished, Times carries measured per-vertex Step time.
	FrameProgress = 4
	// FramePause asks a participant to park its head machines at their
	// next phase start and answer with a FrameProgress.
	FramePause = 5
	// FrameQuiesced is a participant's unsolicited end-of-epoch report:
	// Phase is the barrier it drained to (0 = ran to completion) and
	// Times the epoch's measured per-vertex Step time.
	FrameQuiesced = 6
	// FramePlan announces the next epoch's partition: Epoch and Phase
	// (the base the epoch resumes after) position it, Starts carries
	// the per-machine start indices.
	FramePlan = 7
	// FrameFinish releases a participant: the run is over, no further
	// epochs follow.
	FrameFinish = 8
	// FrameAbort tears the control plane down: Msg carries the
	// root-cause description for the peer's error report.
	FrameAbort = 9
	// FrameWait asks a participant to announce — with a FrameStarted,
	// whenever the condition lands — that its head machines opened
	// phase Phase (coordinator → participant). The blocking wait runs
	// participant-side, so the deterministic ForceEvery trigger needs
	// no polling over the wire.
	FrameWait = 10
	// FrameStarted answers a FrameWait: Phase is the newest phase the
	// heads opened; Done reports they finished without reaching the
	// awaited target.
	FrameStarted = 11
	// FrameRejoin is the recovery identity frame (protocol v4). A
	// restarted worker sends it unsolicited after its control handshake,
	// and every worker answers FrameReset/FrameRestore with one: Epoch
	// and Phase name the checkpoint it describes (epoch and base phase),
	// Starts its partition, Done whether a checkpoint exists at all. An
	// empty Starts is legal here — a rejoiner with a fresh WAL has no
	// partition to report.
	FrameRejoin = 12
	// FrameReset asks a participant to park (abandon any live epoch,
	// keep its WAL) and answer with a FrameRejoin describing its newest
	// stable checkpoint (coordinator → participant; no payload).
	FrameReset = 13
	// FrameRestore asks a parked participant to reload module state from
	// its checkpoint at epoch Phase and prepare to resume at epoch Epoch,
	// answering with a FrameRejoin echo of the restored checkpoint
	// (coordinator → participant; no payload).
	FrameRestore = 14
	// FrameFailed is a participant's report that its current epoch died
	// locally but the process is parked and recoverable: Msg carries the
	// root cause. Unlike FrameAbort it does not tear the channel down.
	FrameFailed = 15
)

// maxWireStarts bounds a plan frame's machine count; a deployment with
// more stages than this is not a plausible frame, it is corruption.
const maxWireStarts = 1 << 20

// maxAbortMsg bounds an abort frame's message so a hostile length
// cannot force a giant allocation.
const maxAbortMsg = 1 << 16

// WireFrame is the decoded form of one link frame: its kind, the
// deployment epoch that produced it (receivers reject frames from a
// stale epoch), the phase it belongs to, and the kind-specific payload
// — Inputs for data frames, Snaps for snapshot frames, Times/Done for
// progress reports, Starts for plans, Msg for aborts, nothing for
// barriers, polls, pauses and finishes.
type WireFrame struct {
	Kind  uint8
	Epoch int
	Phase int
	// Inputs is the data payload (FrameData), already addressed to the
	// receiving machine's bridge vertices.
	Inputs []core.ExtInput
	// Snaps is the state-handoff payload (FrameSnapshot).
	Snaps []core.VertexSnapshot
	// Done reports the participant's machines finished every phase
	// (FrameProgress).
	Done bool
	// Times is measured per-vertex Step time in nanoseconds, indexed by
	// global vertex number minus one (FrameProgress, FrameQuiesced).
	Times []int64
	// Starts is the next epoch's partition: per-machine inclusive start
	// indices into the global numbering (FramePlan).
	Starts []int
	// Msg is the abort reason (FrameAbort).
	Msg string
}

// AppendFrame appends the payload encoding of one frame — kind, epoch,
// phase, then the kind-specific payload — to buf and returns the
// extended slice. The payload is what travels inside the
// length-prefixed wire frame; SendLink adds the prefix.
func AppendFrame(buf []byte, f WireFrame) []byte {
	buf = append(buf, f.Kind)
	buf = binary.AppendUvarint(buf, uint64(f.Epoch))
	buf = binary.AppendUvarint(buf, uint64(f.Phase))
	switch f.Kind {
	case FrameData:
		buf = binary.AppendUvarint(buf, uint64(len(f.Inputs)))
		for _, in := range f.Inputs {
			buf = binary.AppendUvarint(buf, uint64(in.Vertex))
			buf = binary.AppendUvarint(buf, uint64(in.Port))
			buf = AppendValue(buf, in.Val)
		}
	case FrameBarrier, FramePoll, FramePause, FrameFinish, FrameWait:
		// no payload
	case FrameStarted:
		if f.Done {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case FrameSnapshot:
		buf = binary.AppendUvarint(buf, uint64(len(f.Snaps)))
		for _, s := range f.Snaps {
			buf = binary.AppendUvarint(buf, uint64(s.Vertex))
			// Protocol v5: a flags byte per snapshot. Bit 0 marks a
			// delta against the receiver's last-acked full state,
			// identified by an 8-byte FNV-1a hash of that base.
			if s.Delta {
				buf = append(buf, 1)
				buf = binary.LittleEndian.AppendUint64(buf, s.BaseHash)
			} else {
				buf = append(buf, 0)
			}
			buf = binary.AppendUvarint(buf, uint64(len(s.State)))
			buf = append(buf, s.State...)
		}
	case FrameProgress, FrameQuiesced:
		if f.Kind == FrameProgress {
			if f.Done {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
		buf = binary.AppendUvarint(buf, uint64(len(f.Times)))
		for _, t := range f.Times {
			buf = binary.AppendVarint(buf, t)
		}
	case FramePlan:
		buf = binary.AppendUvarint(buf, uint64(len(f.Starts)))
		for _, s := range f.Starts {
			buf = binary.AppendUvarint(buf, uint64(s))
		}
	case FrameAbort, FrameFailed:
		buf = binary.AppendUvarint(buf, uint64(len(f.Msg)))
		buf = append(buf, f.Msg...)
	case FrameReset, FrameRestore:
		// no payload
	case FrameRejoin:
		if f.Done {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(f.Starts)))
		for _, s := range f.Starts {
			buf = binary.AppendUvarint(buf, uint64(s))
		}
	default:
		panic(fmt.Sprintf("netwire: unencodable frame kind %d", f.Kind))
	}
	return buf
}

// DecodeFrame decodes a frame payload produced by AppendFrame. Every
// byte must be consumed: trailing garbage is corruption, not padding.
func DecodeFrame(payload []byte) (WireFrame, error) {
	var f WireFrame
	if len(payload) == 0 {
		return f, fmt.Errorf("netwire: truncated frame: missing kind")
	}
	f.Kind, payload = payload[0], payload[1:]
	epoch, used := binary.Uvarint(payload)
	if used <= 0 {
		return f, fmt.Errorf("netwire: truncated frame: missing epoch")
	}
	if epoch > math.MaxInt32 {
		return f, fmt.Errorf("netwire: implausible epoch %d", epoch)
	}
	f.Epoch = int(epoch)
	payload = payload[used:]
	p, used := binary.Uvarint(payload)
	if used <= 0 {
		return f, fmt.Errorf("netwire: truncated frame: missing phase")
	}
	if p > math.MaxInt32 {
		return f, fmt.Errorf("netwire: implausible phase %d", p)
	}
	f.Phase = int(p)
	payload = payload[used:]
	var err error
	switch f.Kind {
	case FrameData:
		f.Inputs, err = decodeInputs(payload)
	case FrameBarrier, FramePoll, FramePause, FrameFinish, FrameWait:
		if len(payload) != 0 {
			err = fmt.Errorf("netwire: %d payload bytes on a frame of kind %d", len(payload), f.Kind)
		}
	case FrameStarted:
		if len(payload) != 1 {
			return WireFrame{}, fmt.Errorf("netwire: started frame with %d payload bytes, want 1", len(payload))
		}
		f.Done = payload[0] != 0
	case FrameSnapshot:
		f.Snaps, err = decodeSnaps(payload)
	case FrameProgress, FrameQuiesced:
		if f.Kind == FrameProgress {
			if len(payload) == 0 {
				return WireFrame{}, fmt.Errorf("netwire: truncated progress frame: missing done flag")
			}
			f.Done, payload = payload[0] != 0, payload[1:]
		}
		f.Times, err = decodeTimes(payload)
	case FramePlan:
		f.Starts, err = decodeStarts(payload)
	case FrameAbort, FrameFailed:
		f.Msg, err = decodeMsg(payload)
	case FrameReset, FrameRestore:
		if len(payload) != 0 {
			err = fmt.Errorf("netwire: %d payload bytes on a frame of kind %d", len(payload), f.Kind)
		}
	case FrameRejoin:
		if len(payload) == 0 {
			return WireFrame{}, fmt.Errorf("netwire: truncated rejoin frame: missing checkpoint flag")
		}
		f.Done, payload = payload[0] != 0, payload[1:]
		f.Starts, err = decodeRejoinStarts(payload)
	default:
		err = fmt.Errorf("netwire: unknown frame kind %d", f.Kind)
	}
	if err != nil {
		return WireFrame{}, err
	}
	return f, nil
}

// decodeTimes decodes a progress/quiesced frame's per-vertex time
// vector, consuming the whole payload.
func decodeTimes(payload []byte) ([]int64, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return nil, fmt.Errorf("netwire: truncated frame: missing time count")
	}
	payload = payload[used:]
	// Each time costs at least one varint byte.
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("netwire: frame claims %d times in %d bytes", n, len(payload))
	}
	var times []int64
	if n > 0 {
		times = make([]int64, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		t, used := binary.Varint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("netwire: truncated time %d", i)
		}
		payload = payload[used:]
		times = append(times, t)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("netwire: %d trailing bytes after frame", len(payload))
	}
	return times, nil
}

// decodeStarts decodes a plan frame's partition vector, consuming the
// whole payload.
func decodeStarts(payload []byte) ([]int, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return nil, fmt.Errorf("netwire: truncated frame: missing start count")
	}
	payload = payload[used:]
	if n == 0 || n > maxWireStarts || n > uint64(len(payload)) {
		return nil, fmt.Errorf("netwire: frame claims %d starts in %d bytes", n, len(payload))
	}
	starts := make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		s, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("netwire: truncated start %d", i)
		}
		payload = payload[used:]
		if s == 0 || s > math.MaxInt32 {
			return nil, fmt.Errorf("netwire: start %d: implausible vertex %d", i, s)
		}
		starts = append(starts, int(s))
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("netwire: %d trailing bytes after frame", len(payload))
	}
	return starts, nil
}

// decodeRejoinStarts decodes a rejoin frame's partition vector. Unlike
// decodeStarts an empty vector is legal: a rejoiner without a
// checkpoint has no partition to report.
func decodeRejoinStarts(payload []byte) ([]int, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return nil, fmt.Errorf("netwire: truncated frame: missing start count")
	}
	payload = payload[used:]
	if n > maxWireStarts || n > uint64(len(payload)) {
		return nil, fmt.Errorf("netwire: frame claims %d starts in %d bytes", n, len(payload))
	}
	var starts []int
	if n > 0 {
		starts = make([]int, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		s, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("netwire: truncated start %d", i)
		}
		payload = payload[used:]
		if s == 0 || s > math.MaxInt32 {
			return nil, fmt.Errorf("netwire: start %d: implausible vertex %d", i, s)
		}
		starts = append(starts, int(s))
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("netwire: %d trailing bytes after frame", len(payload))
	}
	return starts, nil
}

// decodeMsg decodes an abort frame's message, consuming the whole
// payload.
func decodeMsg(payload []byte) (string, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return "", fmt.Errorf("netwire: truncated frame: missing message length")
	}
	payload = payload[used:]
	if n > maxAbortMsg || n != uint64(len(payload)) {
		return "", fmt.Errorf("netwire: abort message of %d bytes in %d-byte payload", n, len(payload))
	}
	return string(payload), nil
}

// decodeInputs decodes a data frame's input list, consuming the whole
// payload.
func decodeInputs(payload []byte) ([]core.ExtInput, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return nil, fmt.Errorf("netwire: truncated frame: missing input count")
	}
	payload = payload[used:]
	// Each input costs at least 3 bytes (vertex, port, kind), so an
	// input count beyond len/3 cannot be honest — reject it before
	// allocating.
	if n > uint64(len(payload)/3+1) {
		return nil, fmt.Errorf("netwire: frame claims %d inputs in %d bytes", n, len(payload))
	}
	var inputs []core.ExtInput
	if n > 0 {
		inputs = GetInputs(int(n))
	}
	for i := uint64(0); i < n; i++ {
		vtx, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("netwire: truncated input %d: vertex", i)
		}
		payload = payload[used:]
		port, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("netwire: truncated input %d: port", i)
		}
		payload = payload[used:]
		if vtx == 0 || vtx > math.MaxInt32 || port > math.MaxInt32 {
			return nil, fmt.Errorf("netwire: input %d: implausible vertex %d / port %d", i, vtx, port)
		}
		var v event.Value
		var err error
		v, payload, err = ReadValue(payload)
		if err != nil {
			return nil, fmt.Errorf("netwire: input %d: %w", i, err)
		}
		inputs = append(inputs, core.ExtInput{Vertex: int(vtx), Port: int(port), Val: v})
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("netwire: %d trailing bytes after frame", len(payload))
	}
	return inputs, nil
}

// decodeSnaps decodes a snapshot frame's vertex-state list, consuming
// the whole payload.
func decodeSnaps(payload []byte) ([]core.VertexSnapshot, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return nil, fmt.Errorf("netwire: truncated frame: missing snapshot count")
	}
	payload = payload[used:]
	// Each snapshot costs at least 3 bytes (vertex, flags, state
	// length).
	if n > uint64(len(payload)/3+1) {
		return nil, fmt.Errorf("netwire: frame claims %d snapshots in %d bytes", n, len(payload))
	}
	var snaps []core.VertexSnapshot
	if n > 0 {
		snaps = make([]core.VertexSnapshot, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		vtx, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("netwire: truncated snapshot %d: vertex", i)
		}
		payload = payload[used:]
		if vtx == 0 || vtx > math.MaxInt32 {
			return nil, fmt.Errorf("netwire: snapshot %d: implausible vertex %d", i, vtx)
		}
		if len(payload) == 0 {
			return nil, fmt.Errorf("netwire: truncated snapshot %d: missing flags", i)
		}
		flags := payload[0]
		payload = payload[1:]
		if flags > 1 {
			return nil, fmt.Errorf("netwire: snapshot %d: unknown flags %#x", i, flags)
		}
		var baseHash uint64
		if flags&1 != 0 {
			if len(payload) < 8 {
				return nil, fmt.Errorf("netwire: truncated snapshot %d: missing base hash", i)
			}
			baseHash = binary.LittleEndian.Uint64(payload)
			payload = payload[8:]
		}
		size, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("netwire: truncated snapshot %d: state length", i)
		}
		payload = payload[used:]
		if size > uint64(len(payload)) {
			return nil, fmt.Errorf("netwire: snapshot %d claims %d state bytes, %d remain", i, size, len(payload))
		}
		state := make([]byte, size)
		copy(state, payload[:size])
		payload = payload[size:]
		snaps = append(snaps, core.VertexSnapshot{Vertex: int(vtx), State: state, Delta: flags&1 != 0, BaseHash: baseHash})
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("netwire: %d trailing bytes after frame", len(payload))
	}
	return snaps, nil
}
