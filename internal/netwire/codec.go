// Package netwire is the wire layer under distrib's TCP transport: a
// compact binary codec for event values, external inputs and per-phase
// frames, length-prefixed framing with strict bounds checking, and the
// per-link handshake + credit-window protocol that gives a real socket
// the same bounded-buffer semantics as an in-process channel
// (DESIGN.md §7).
//
// The codec is deliberately tiny and self-contained — varints and
// little-endian float bits, no reflection, no external schema — so the
// serialized form is stable, fuzzable and cheap: encoding a frame
// reuses the caller's scratch buffer and allocates nothing in steady
// state.
package netwire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/event"
)

// DefaultMaxFrame is the largest encoded frame payload a link accepts
// unless configured otherwise: past this, a length prefix is treated as
// corruption (or abuse), not data. 16 MiB fits ~2M float64 vector
// elements per phase per link — far beyond any workload in the repo.
const DefaultMaxFrame = 16 << 20

// value kind tags on the wire. These deliberately mirror event.Kind but
// are a separate namespace: the wire format is frozen by round-trip and
// fuzz tests, while event.Kind is free to evolve internally.
const (
	wireNone   = 0
	wireBool   = 1
	wireInt    = 2
	wireFloat  = 3
	wireString = 4
	wireVector = 5
)

// AppendValue appends the wire encoding of v to buf and returns the
// extended slice. All five payload kinds round-trip exactly, including
// NaN floats, empty strings and empty (but non-nil) vectors.
func AppendValue(buf []byte, v event.Value) []byte {
	switch v.Kind() {
	case event.KindNone:
		return append(buf, wireNone)
	case event.KindBool:
		b, _ := v.AsBool()
		if b {
			return append(buf, wireBool, 1)
		}
		return append(buf, wireBool, 0)
	case event.KindInt:
		i, _ := v.AsInt()
		buf = append(buf, wireInt)
		return binary.AppendVarint(buf, i)
	case event.KindFloat:
		f, _ := v.AsFloat()
		buf = append(buf, wireFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	case event.KindString:
		s, _ := v.AsString()
		buf = append(buf, wireString)
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	case event.KindVector:
		vec, _ := v.AsVector()
		buf = append(buf, wireVector)
		buf = binary.AppendUvarint(buf, uint64(len(vec)))
		for _, f := range vec {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		return buf
	default:
		panic(fmt.Sprintf("netwire: unencodable value kind %v", v.Kind()))
	}
}

// ReadValue decodes one value from the front of buf, returning the
// value and the remaining bytes. Truncated or unknown-kind input is an
// error, never a partial value.
func ReadValue(buf []byte) (event.Value, []byte, error) {
	if len(buf) == 0 {
		return event.Value{}, nil, fmt.Errorf("netwire: truncated value: missing kind")
	}
	kind, rest := buf[0], buf[1:]
	switch kind {
	case wireNone:
		return event.None(), rest, nil
	case wireBool:
		if len(rest) < 1 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated bool")
		}
		return event.Bool(rest[0] != 0), rest[1:], nil
	case wireInt:
		i, n := binary.Varint(rest)
		if n <= 0 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated int varint")
		}
		return event.Int(i), rest[n:], nil
	case wireFloat:
		if len(rest) < 8 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated float")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		return event.Float(f), rest[8:], nil
	case wireString:
		n, used := binary.Uvarint(rest)
		if used <= 0 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated string length")
		}
		rest = rest[used:]
		if uint64(len(rest)) < n {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated string: want %d bytes, have %d", n, len(rest))
		}
		return event.String(string(rest[:n])), rest[n:], nil
	case wireVector:
		n, used := binary.Uvarint(rest)
		if used <= 0 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated vector length")
		}
		rest = rest[used:]
		if uint64(len(rest)) < n*8 || n > uint64(len(rest)) {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated vector: want %d elements, have %d bytes", n, len(rest))
		}
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
		}
		return event.Vector(vec), rest[n*8:], nil
	default:
		return event.Value{}, nil, fmt.Errorf("netwire: unknown value kind %d", kind)
	}
}

// AppendFrame appends the payload encoding of one phase frame — the
// phase number and every external input it carries — to buf and
// returns the extended slice. The payload is what travels inside the
// length-prefixed wire frame; WriteFrame adds the prefix.
func AppendFrame(buf []byte, phase int, inputs []core.ExtInput) []byte {
	buf = binary.AppendUvarint(buf, uint64(phase))
	buf = binary.AppendUvarint(buf, uint64(len(inputs)))
	for _, in := range inputs {
		buf = binary.AppendUvarint(buf, uint64(in.Vertex))
		buf = binary.AppendUvarint(buf, uint64(in.Port))
		buf = AppendValue(buf, in.Val)
	}
	return buf
}

// DecodeFrame decodes a frame payload produced by AppendFrame. Every
// byte must be consumed: trailing garbage is corruption, not padding.
func DecodeFrame(payload []byte) (phase int, inputs []core.ExtInput, err error) {
	p, used := binary.Uvarint(payload)
	if used <= 0 {
		return 0, nil, fmt.Errorf("netwire: truncated frame: missing phase")
	}
	if p > math.MaxInt32 {
		return 0, nil, fmt.Errorf("netwire: implausible phase %d", p)
	}
	payload = payload[used:]
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return 0, nil, fmt.Errorf("netwire: truncated frame: missing input count")
	}
	payload = payload[used:]
	// Each input costs at least 3 bytes (vertex, port, kind), so an
	// input count beyond len/3 cannot be honest — reject it before
	// allocating.
	if n > uint64(len(payload)/3+1) {
		return 0, nil, fmt.Errorf("netwire: frame claims %d inputs in %d bytes", n, len(payload))
	}
	if n > 0 {
		inputs = make([]core.ExtInput, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		vtx, used := binary.Uvarint(payload)
		if used <= 0 {
			return 0, nil, fmt.Errorf("netwire: truncated input %d: vertex", i)
		}
		payload = payload[used:]
		port, used := binary.Uvarint(payload)
		if used <= 0 {
			return 0, nil, fmt.Errorf("netwire: truncated input %d: port", i)
		}
		payload = payload[used:]
		if vtx == 0 || vtx > math.MaxInt32 || port > math.MaxInt32 {
			return 0, nil, fmt.Errorf("netwire: input %d: implausible vertex %d / port %d", i, vtx, port)
		}
		var v event.Value
		v, payload, err = ReadValue(payload)
		if err != nil {
			return 0, nil, fmt.Errorf("netwire: input %d: %w", i, err)
		}
		inputs = append(inputs, core.ExtInput{Vertex: int(vtx), Port: int(port), Val: v})
	}
	if len(payload) != 0 {
		return 0, nil, fmt.Errorf("netwire: %d trailing bytes after frame", len(payload))
	}
	return int(p), inputs, nil
}
