// Package netwire is the wire layer under distrib's TCP transport: a
// compact binary codec for event values, external inputs and per-phase
// frames, length-prefixed framing with strict bounds checking, and the
// per-link handshake + credit-window protocol that gives a real socket
// the same bounded-buffer semantics as an in-process channel
// (DESIGN.md §7).
//
// The codec is deliberately tiny and self-contained — varints and
// little-endian float bits, no reflection, no external schema — so the
// serialized form is stable, fuzzable and cheap: encoding a frame
// reuses the caller's scratch buffer and allocates nothing in steady
// state.
package netwire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/event"
)

// DefaultMaxFrame is the largest encoded frame payload a link accepts
// unless configured otherwise: past this, a length prefix is treated as
// corruption (or abuse), not data. 16 MiB fits ~2M float64 vector
// elements per phase per link — far beyond any workload in the repo.
const DefaultMaxFrame = 16 << 20

// value kind tags on the wire. These deliberately mirror event.Kind but
// are a separate namespace: the wire format is frozen by round-trip and
// fuzz tests, while event.Kind is free to evolve internally.
const (
	wireNone   = 0
	wireBool   = 1
	wireInt    = 2
	wireFloat  = 3
	wireString = 4
	wireVector = 5
)

// AppendValue appends the wire encoding of v to buf and returns the
// extended slice. All five payload kinds round-trip exactly, including
// NaN floats, empty strings and empty (but non-nil) vectors.
func AppendValue(buf []byte, v event.Value) []byte {
	switch v.Kind() {
	case event.KindNone:
		return append(buf, wireNone)
	case event.KindBool:
		b, _ := v.AsBool()
		if b {
			return append(buf, wireBool, 1)
		}
		return append(buf, wireBool, 0)
	case event.KindInt:
		i, _ := v.AsInt()
		buf = append(buf, wireInt)
		return binary.AppendVarint(buf, i)
	case event.KindFloat:
		f, _ := v.AsFloat()
		buf = append(buf, wireFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	case event.KindString:
		s, _ := v.AsString()
		buf = append(buf, wireString)
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	case event.KindVector:
		vec, _ := v.AsVector()
		buf = append(buf, wireVector)
		buf = binary.AppendUvarint(buf, uint64(len(vec)))
		for _, f := range vec {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		return buf
	default:
		panic(fmt.Sprintf("netwire: unencodable value kind %v", v.Kind()))
	}
}

// ReadValue decodes one value from the front of buf, returning the
// value and the remaining bytes. Truncated or unknown-kind input is an
// error, never a partial value.
func ReadValue(buf []byte) (event.Value, []byte, error) {
	if len(buf) == 0 {
		return event.Value{}, nil, fmt.Errorf("netwire: truncated value: missing kind")
	}
	kind, rest := buf[0], buf[1:]
	switch kind {
	case wireNone:
		return event.None(), rest, nil
	case wireBool:
		if len(rest) < 1 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated bool")
		}
		return event.Bool(rest[0] != 0), rest[1:], nil
	case wireInt:
		i, n := binary.Varint(rest)
		if n <= 0 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated int varint")
		}
		return event.Int(i), rest[n:], nil
	case wireFloat:
		if len(rest) < 8 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated float")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		return event.Float(f), rest[8:], nil
	case wireString:
		n, used := binary.Uvarint(rest)
		if used <= 0 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated string length")
		}
		rest = rest[used:]
		if uint64(len(rest)) < n {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated string: want %d bytes, have %d", n, len(rest))
		}
		return event.String(string(rest[:n])), rest[n:], nil
	case wireVector:
		n, used := binary.Uvarint(rest)
		if used <= 0 {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated vector length")
		}
		rest = rest[used:]
		if uint64(len(rest)) < n*8 || n > uint64(len(rest)) {
			return event.Value{}, nil, fmt.Errorf("netwire: truncated vector: want %d elements, have %d bytes", n, len(rest))
		}
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
		}
		return event.Vector(vec), rest[n*8:], nil
	default:
		return event.Value{}, nil, fmt.Errorf("netwire: unknown value kind %d", kind)
	}
}

// Frame kinds on the wire. Data frames carry one phase's external
// inputs; barrier and snapshot frames are the control plane of
// distrib's dynamic repartitioning (DESIGN.md §8): a barrier announces
// the phase at which the sender quiesced its epoch, and a snapshot
// hands migrating vertices' serialized module state to their new
// machine.
const (
	// FrameData is a per-phase data frame: Phase plus Inputs.
	FrameData = 0
	// FrameBarrier is an epoch-quiesce announcement: Phase names the
	// barrier (the last phase of the closing epoch); no payload.
	FrameBarrier = 1
	// FrameSnapshot is a state-handoff frame: Phase names the barrier
	// it follows and Snaps carries the migrating vertices' state.
	FrameSnapshot = 2
)

// WireFrame is the decoded form of one link frame: its kind, the
// deployment epoch that produced it (receivers reject frames from a
// stale epoch), the phase it belongs to, and the kind-specific payload
// — Inputs for data frames, Snaps for snapshot frames, neither for
// barriers.
type WireFrame struct {
	Kind  uint8
	Epoch int
	Phase int
	// Inputs is the data payload (FrameData), already addressed to the
	// receiving machine's bridge vertices.
	Inputs []core.ExtInput
	// Snaps is the state-handoff payload (FrameSnapshot).
	Snaps []core.VertexSnapshot
}

// AppendFrame appends the payload encoding of one frame — kind, epoch,
// phase, then the kind-specific payload — to buf and returns the
// extended slice. The payload is what travels inside the
// length-prefixed wire frame; SendLink adds the prefix.
func AppendFrame(buf []byte, f WireFrame) []byte {
	buf = append(buf, f.Kind)
	buf = binary.AppendUvarint(buf, uint64(f.Epoch))
	buf = binary.AppendUvarint(buf, uint64(f.Phase))
	switch f.Kind {
	case FrameData:
		buf = binary.AppendUvarint(buf, uint64(len(f.Inputs)))
		for _, in := range f.Inputs {
			buf = binary.AppendUvarint(buf, uint64(in.Vertex))
			buf = binary.AppendUvarint(buf, uint64(in.Port))
			buf = AppendValue(buf, in.Val)
		}
	case FrameBarrier:
		// no payload
	case FrameSnapshot:
		buf = binary.AppendUvarint(buf, uint64(len(f.Snaps)))
		for _, s := range f.Snaps {
			buf = binary.AppendUvarint(buf, uint64(s.Vertex))
			buf = binary.AppendUvarint(buf, uint64(len(s.State)))
			buf = append(buf, s.State...)
		}
	default:
		panic(fmt.Sprintf("netwire: unencodable frame kind %d", f.Kind))
	}
	return buf
}

// DecodeFrame decodes a frame payload produced by AppendFrame. Every
// byte must be consumed: trailing garbage is corruption, not padding.
func DecodeFrame(payload []byte) (WireFrame, error) {
	var f WireFrame
	if len(payload) == 0 {
		return f, fmt.Errorf("netwire: truncated frame: missing kind")
	}
	f.Kind, payload = payload[0], payload[1:]
	epoch, used := binary.Uvarint(payload)
	if used <= 0 {
		return f, fmt.Errorf("netwire: truncated frame: missing epoch")
	}
	if epoch > math.MaxInt32 {
		return f, fmt.Errorf("netwire: implausible epoch %d", epoch)
	}
	f.Epoch = int(epoch)
	payload = payload[used:]
	p, used := binary.Uvarint(payload)
	if used <= 0 {
		return f, fmt.Errorf("netwire: truncated frame: missing phase")
	}
	if p > math.MaxInt32 {
		return f, fmt.Errorf("netwire: implausible phase %d", p)
	}
	f.Phase = int(p)
	payload = payload[used:]
	var err error
	switch f.Kind {
	case FrameData:
		f.Inputs, err = decodeInputs(payload)
	case FrameBarrier:
		if len(payload) != 0 {
			err = fmt.Errorf("netwire: %d payload bytes on a barrier frame", len(payload))
		}
	case FrameSnapshot:
		f.Snaps, err = decodeSnaps(payload)
	default:
		err = fmt.Errorf("netwire: unknown frame kind %d", f.Kind)
	}
	if err != nil {
		return WireFrame{}, err
	}
	return f, nil
}

// decodeInputs decodes a data frame's input list, consuming the whole
// payload.
func decodeInputs(payload []byte) ([]core.ExtInput, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return nil, fmt.Errorf("netwire: truncated frame: missing input count")
	}
	payload = payload[used:]
	// Each input costs at least 3 bytes (vertex, port, kind), so an
	// input count beyond len/3 cannot be honest — reject it before
	// allocating.
	if n > uint64(len(payload)/3+1) {
		return nil, fmt.Errorf("netwire: frame claims %d inputs in %d bytes", n, len(payload))
	}
	var inputs []core.ExtInput
	if n > 0 {
		inputs = make([]core.ExtInput, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		vtx, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("netwire: truncated input %d: vertex", i)
		}
		payload = payload[used:]
		port, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("netwire: truncated input %d: port", i)
		}
		payload = payload[used:]
		if vtx == 0 || vtx > math.MaxInt32 || port > math.MaxInt32 {
			return nil, fmt.Errorf("netwire: input %d: implausible vertex %d / port %d", i, vtx, port)
		}
		var v event.Value
		var err error
		v, payload, err = ReadValue(payload)
		if err != nil {
			return nil, fmt.Errorf("netwire: input %d: %w", i, err)
		}
		inputs = append(inputs, core.ExtInput{Vertex: int(vtx), Port: int(port), Val: v})
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("netwire: %d trailing bytes after frame", len(payload))
	}
	return inputs, nil
}

// decodeSnaps decodes a snapshot frame's vertex-state list, consuming
// the whole payload.
func decodeSnaps(payload []byte) ([]core.VertexSnapshot, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return nil, fmt.Errorf("netwire: truncated frame: missing snapshot count")
	}
	payload = payload[used:]
	// Each snapshot costs at least 2 bytes (vertex, state length).
	if n > uint64(len(payload)/2+1) {
		return nil, fmt.Errorf("netwire: frame claims %d snapshots in %d bytes", n, len(payload))
	}
	var snaps []core.VertexSnapshot
	if n > 0 {
		snaps = make([]core.VertexSnapshot, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		vtx, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("netwire: truncated snapshot %d: vertex", i)
		}
		payload = payload[used:]
		if vtx == 0 || vtx > math.MaxInt32 {
			return nil, fmt.Errorf("netwire: snapshot %d: implausible vertex %d", i, vtx)
		}
		size, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("netwire: truncated snapshot %d: state length", i)
		}
		payload = payload[used:]
		if size > uint64(len(payload)) {
			return nil, fmt.Errorf("netwire: snapshot %d claims %d state bytes, %d remain", i, size, len(payload))
		}
		state := make([]byte, size)
		copy(state, payload[:size])
		payload = payload[size:]
		snaps = append(snaps, core.VertexSnapshot{Vertex: int(vtx), State: state})
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("netwire: %d trailing bytes after frame", len(payload))
	}
	return snaps, nil
}
