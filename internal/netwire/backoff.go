package netwire

import (
	"fmt"
	"time"
)

// Backoff is a bounded retry-with-backoff schedule for dialing peers:
// attempt 0 runs immediately, attempt i waits Delay(i-1) first, and
// after Attempts failures the last dial error is surfaced. It covers
// both the boot-time window (peers starting in any order) and the
// post-boot dials an epoch switch performs — re-wiring data links and
// control traffic for the next epoch — which previously had no retry
// policy at all. The schedule is deterministic (no jitter) so it can
// be table-tested and reasoned about in failure reports.
type Backoff struct {
	// Base is the delay before the first retry. Defaults to 25ms.
	Base time.Duration
	// Factor multiplies the delay each further retry. Defaults to 2;
	// values below 1 are treated as 1 (constant backoff).
	Factor float64
	// Max caps the per-retry delay. Defaults to 1s.
	Max time.Duration
	// Attempts is the total dial budget, first try included. Defaults
	// to 10.
	Attempts int
}

// WithDefaults fills unset fields with the default schedule.
func (b Backoff) WithDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 25 * time.Millisecond
	}
	if b.Factor == 0 {
		b.Factor = 2
	} else if b.Factor < 1 {
		b.Factor = 1
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Attempts <= 0 {
		b.Attempts = 10
	}
	return b
}

// Delay returns the wait before retry number retry (0-based: the wait
// between the first failure and the second attempt is Delay(0)),
// exponential in Factor and capped at Max.
func (b Backoff) Delay(retry int) time.Duration {
	b = b.WithDefaults()
	d := float64(b.Base)
	for i := 0; i < retry; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			return b.Max
		}
	}
	if d >= float64(b.Max) {
		return b.Max
	}
	return time.Duration(d)
}

// Total returns the schedule's worst-case cumulative wait — the
// longest a caller can block before the final error surfaces,
// excluding the dials themselves.
func (b Backoff) Total() time.Duration {
	b = b.WithDefaults()
	var total time.Duration
	for i := 0; i < b.Attempts-1; i++ {
		total += b.Delay(i)
	}
	return total
}

// retryDial runs one dial function under the schedule.
func retryDial[T any](b Backoff, what string, dial func() (T, error)) (T, error) {
	b = b.WithDefaults()
	var zero T
	var err error
	for i := 0; i < b.Attempts; i++ {
		if i > 0 {
			time.Sleep(b.Delay(i - 1))
		}
		var v T
		v, err = dial()
		if err == nil {
			return v, nil
		}
	}
	return zero, fmt.Errorf("netwire: %s: %d attempts exhausted: %w", what, b.Attempts, err)
}

// DialRetry dials a data link under the backoff schedule, retrying
// while the peer boots (or re-enters its accept loop between epochs).
func DialRetry(addr string, from, to, window int, b Backoff) (*SendLink, error) {
	return retryDial(b, fmt.Sprintf("dial %d->%d at %s", from, to, addr), func() (*SendLink, error) {
		return Dial(addr, from, to, window)
	})
}

// DialCtlRetry dials a control channel under the backoff schedule.
func DialCtlRetry(addr string, from, to int, b Backoff) (*CtlConn, error) {
	return retryDial(b, fmt.Sprintf("dial ctl %d->%d at %s", from, to, addr), func() (*CtlConn, error) {
		return DialCtl(addr, from, to)
	})
}
