package netwire

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// valueFromSeed deterministically builds a Value of any kind from fuzz
// bytes, covering every branch of the codec including empty strings and
// empty vectors.
func valueFromSeed(kind uint8, num int64, s string, vec []byte) event.Value {
	switch kind % 6 {
	case 0:
		return event.None()
	case 1:
		return event.Bool(num%2 == 0)
	case 2:
		// event.Int documents exact precision only within ±2^53; beyond
		// that AsInt is already lossy before any wire is involved.
		return event.Int(num % (1 << 53))
	case 3:
		return event.Float(math.Float64frombits(uint64(num)))
	case 4:
		return event.String(s)
	default:
		fs := make([]float64, len(vec)%17)
		for i := range fs {
			fs[i] = float64(int8(vec[i%max(len(vec), 1)])) / 3.0
		}
		return event.Vector(fs)
	}
}

// FuzzValueRoundTrip: every constructible value survives encode+decode
// bit-exactly, with no bytes left over.
func FuzzValueRoundTrip(f *testing.F) {
	f.Add(uint8(0), int64(0), "", []byte{})
	f.Add(uint8(2), int64(-99), "x", []byte{1, 2})
	f.Add(uint8(3), int64(math.MaxInt64), "", []byte{})
	f.Add(uint8(4), int64(0), "Δ-dataflow", []byte{})
	f.Add(uint8(5), int64(7), "", []byte{0xff, 0x00, 0x7f, 3, 4, 5})
	f.Fuzz(func(t *testing.T, kind uint8, num int64, s string, vec []byte) {
		v := valueFromSeed(kind, num, s, vec)
		buf := AppendValue(nil, v)
		got, rest, err := ReadValue(buf)
		if err != nil {
			t.Fatalf("ReadValue(%v): %v", v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes decoding %v", len(rest), v)
		}
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Fatalf("round trip %v (%v) -> %v (%v)", v, v.Kind(), got, got.Kind())
		}
	})
}

// frameFromSeed deterministically builds a frame of any kind from fuzz
// bytes: data frames with two inputs, barriers, snapshot frames whose
// state bytes come straight from the fuzzer, every control-plane
// kind — progress/quiesce time vectors, plans, waits, started
// announcements and aborts — and the v4 recovery kinds (rejoin frames
// with possibly-empty partitions, resets, restores, failure reports).
func frameFromSeed(fkind uint8, epoch, phase int, kind uint8, num int64, s string, vec []byte) WireFrame {
	f := WireFrame{Kind: fkind % 16, Epoch: epoch, Phase: phase}
	switch f.Kind {
	case FrameData:
		f.Inputs = []core.ExtInput{
			{Vertex: 1 + int(kind)%7, Port: int(num & 3), Val: valueFromSeed(kind, num, s, vec)},
			{Vertex: 2, Port: 0, Val: valueFromSeed(kind+1, num^5, s+"!", vec)},
		}
	case FrameSnapshot:
		f.Snaps = []core.VertexSnapshot{
			{Vertex: 1 + int(kind)%9, State: vec},
			{Vertex: 100 + int(num&15), State: []byte(s)},
		}
	case FrameProgress, FrameQuiesced:
		f.Done = f.Kind == FrameProgress && num%2 == 0
		f.Times = make([]int64, len(vec)%9)
		for i := range f.Times {
			f.Times[i] = num ^ int64(vec[i])<<i
		}
	case FramePlan:
		f.Starts = make([]int, 1+int(kind)%4)
		for i := range f.Starts {
			f.Starts[i] = 1 + i*(1+int(num&7))
		}
	case FrameStarted:
		f.Done = num%2 == 0
	case FrameAbort, FrameFailed:
		f.Msg = s
	case FrameRejoin:
		f.Done = num%2 == 0
		// An empty partition is legal on a rejoin frame.
		f.Starts = make([]int, int(kind)%4)
		for i := range f.Starts {
			f.Starts[i] = 1 + i*(1+int(num&7))
		}
	}
	return f
}

// ctlFieldsEqual compares the control-plane payload fields two decoded
// frames must agree on.
func ctlFieldsEqual(a, b WireFrame) bool {
	if a.Done != b.Done || a.Msg != b.Msg || len(a.Times) != len(b.Times) || len(a.Starts) != len(b.Starts) {
		return false
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			return false
		}
	}
	for i := range a.Starts {
		if a.Starts[i] != b.Starts[i] {
			return false
		}
	}
	return true
}

// FuzzFrameRoundTrip: frames built from fuzzed inputs round-trip, and
// re-encoding the decoded frame reproduces the identical bytes
// (canonical encoding).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(0), 0, 1, uint8(3), int64(12), "a", []byte{9})
	f.Add(uint8(1), 2, 1<<20, uint8(5), int64(-1), "", []byte{})
	f.Add(uint8(2), 1, 40, uint8(0), int64(7), "state", []byte{1, 2, 3})
	f.Add(uint8(FrameProgress), 3, 17, uint8(1), int64(42), "", []byte{8, 7, 6, 5})
	f.Add(uint8(FrameQuiesced), 2, 60, uint8(0), int64(-9), "", []byte{1})
	f.Add(uint8(FramePlan), 1, 30, uint8(2), int64(3), "", []byte{})
	f.Add(uint8(FrameWait), 0, 12, uint8(0), int64(0), "", []byte{})
	f.Add(uint8(FrameStarted), 0, 14, uint8(0), int64(1), "", []byte{})
	f.Add(uint8(FrameAbort), 4, 0, uint8(0), int64(0), "machine 2: injected crash", []byte{})
	f.Add(uint8(FrameRejoin), 2, 120, uint8(3), int64(4), "", []byte{})
	f.Add(uint8(FrameRejoin), 0, 0, uint8(0), int64(1), "", []byte{})
	f.Add(uint8(FrameReset), 1, 0, uint8(0), int64(0), "", []byte{})
	f.Add(uint8(FrameRestore), 5, 3, uint8(0), int64(0), "", []byte{})
	f.Add(uint8(FrameFailed), 2, 88, uint8(0), int64(0), "machine 1: link closed", []byte{})
	f.Fuzz(func(t *testing.T, fkind uint8, epoch, phase int, kind uint8, num int64, s string, vec []byte) {
		if phase < 0 || phase > math.MaxInt32 || epoch < 0 || epoch > math.MaxInt32 {
			t.Skip()
		}
		frame := frameFromSeed(fkind, epoch, phase, kind, num, s, vec)
		payload := AppendFrame(nil, frame)
		got, err := DecodeFrame(payload)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if got.Kind != frame.Kind || got.Epoch != frame.Epoch || got.Phase != frame.Phase ||
			len(got.Inputs) != len(frame.Inputs) || len(got.Snaps) != len(frame.Snaps) ||
			!ctlFieldsEqual(got, frame) {
			t.Fatalf("frame shape changed: %+v -> %+v", frame, got)
		}
		for i := range frame.Inputs {
			if got.Inputs[i].Vertex != frame.Inputs[i].Vertex || got.Inputs[i].Port != frame.Inputs[i].Port || !got.Inputs[i].Val.Equal(frame.Inputs[i].Val) {
				t.Fatalf("input %d: %+v != %+v", i, got.Inputs[i], frame.Inputs[i])
			}
		}
		for i := range frame.Snaps {
			if got.Snaps[i].Vertex != frame.Snaps[i].Vertex || string(got.Snaps[i].State) != string(frame.Snaps[i].State) {
				t.Fatalf("snapshot %d: %+v != %+v", i, got.Snaps[i], frame.Snaps[i])
			}
		}
		again := AppendFrame(nil, got)
		if string(again) != string(payload) {
			t.Fatalf("re-encoding is not canonical: %x != %x", again, payload)
		}
	})
}

// FuzzDecodeFrameHostile: arbitrary bytes never panic and never
// over-allocate — they either decode cleanly or error. An accepted
// frame must survive a re-encode + re-decode with identical semantics
// (byte canonicality is not promised for hostile input: Uvarint
// tolerates non-minimal varints).
func FuzzDecodeFrameHostile(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameData, Phase: 3, Inputs: []core.ExtInput{{Vertex: 1, Port: 0, Val: event.Int(5)}}}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameBarrier, Epoch: 1, Phase: 12}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameSnapshot, Epoch: 1, Phase: 12, Snaps: []core.VertexSnapshot{{Vertex: 2, State: []byte{7}}}}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameProgress, Epoch: 1, Phase: 9, Done: true, Times: []int64{5, -3, 0}}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameQuiesced, Epoch: 2, Phase: 40, Times: []int64{1 << 40}}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FramePlan, Epoch: 1, Phase: 20, Starts: []int{1, 5, 9}}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameWait, Epoch: 0, Phase: 16}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameStarted, Epoch: 0, Phase: 18, Done: false}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameAbort, Epoch: 3, Msg: "barrier ack timeout"}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameRejoin, Epoch: 2, Phase: 120, Done: true, Starts: []int{1, 4, 7}}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameRejoin, Epoch: 0, Phase: 0}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameReset, Epoch: 1}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameRestore, Epoch: 6, Phase: 4}))
	f.Add(AppendFrame(nil, WireFrame{Kind: FrameFailed, Epoch: 2, Phase: 88, Msg: "machine 1: link closed"}))
	f.Add([]byte{FramePlan, 0x01, 0x14, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{FrameAbort, 0x00, 0x00, 0xff, 0xff, 0x7f})
	f.Add([]byte{0x00, 0x00, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{0x00, 0x00, 0x01, 0x01, 0x01, 0x00, wireVector, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0x02, 0x00, 0x01, 0x01, 0x01, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := DecodeFrame(data)
		if err != nil {
			return
		}
		again := AppendFrame(nil, frame)
		f2, err := DecodeFrame(again)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if f2.Kind != frame.Kind || f2.Epoch != frame.Epoch || f2.Phase != frame.Phase ||
			len(f2.Inputs) != len(frame.Inputs) || len(f2.Snaps) != len(frame.Snaps) ||
			!ctlFieldsEqual(f2, frame) {
			t.Fatalf("re-decode changed frame: %+v != %+v", f2, frame)
		}
		for i := range frame.Inputs {
			if f2.Inputs[i].Vertex != frame.Inputs[i].Vertex || f2.Inputs[i].Port != frame.Inputs[i].Port || !f2.Inputs[i].Val.Equal(frame.Inputs[i].Val) {
				t.Fatalf("re-decode changed input %d: %+v != %+v", i, f2.Inputs[i], frame.Inputs[i])
			}
		}
		for i := range frame.Snaps {
			if f2.Snaps[i].Vertex != frame.Snaps[i].Vertex || string(f2.Snaps[i].State) != string(frame.Snaps[i].State) {
				t.Fatalf("re-decode changed snapshot %d: %+v != %+v", i, f2.Snaps[i], frame.Snaps[i])
			}
		}
	})
}

// FuzzReadValueHostile: arbitrary bytes never panic ReadValue; an
// accepted value survives re-encode + re-decode unchanged.
func FuzzReadValueHostile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{wireVector, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Add(AppendValue(nil, event.String("seed")))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, _, err := ReadValue(data)
		if err != nil {
			return
		}
		got, rest, err := ReadValue(AppendValue(nil, v))
		if err != nil || len(rest) != 0 || !got.Equal(v) || got.Kind() != v.Kind() {
			t.Fatalf("re-decode of accepted value %v failed: %v (%v, %d left)", v, got, err, len(rest))
		}
	})
}
