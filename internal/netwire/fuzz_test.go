package netwire

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// valueFromSeed deterministically builds a Value of any kind from fuzz
// bytes, covering every branch of the codec including empty strings and
// empty vectors.
func valueFromSeed(kind uint8, num int64, s string, vec []byte) event.Value {
	switch kind % 6 {
	case 0:
		return event.None()
	case 1:
		return event.Bool(num%2 == 0)
	case 2:
		// event.Int documents exact precision only within ±2^53; beyond
		// that AsInt is already lossy before any wire is involved.
		return event.Int(num % (1 << 53))
	case 3:
		return event.Float(math.Float64frombits(uint64(num)))
	case 4:
		return event.String(s)
	default:
		fs := make([]float64, len(vec)%17)
		for i := range fs {
			fs[i] = float64(int8(vec[i%max(len(vec), 1)])) / 3.0
		}
		return event.Vector(fs)
	}
}

// FuzzValueRoundTrip: every constructible value survives encode+decode
// bit-exactly, with no bytes left over.
func FuzzValueRoundTrip(f *testing.F) {
	f.Add(uint8(0), int64(0), "", []byte{})
	f.Add(uint8(2), int64(-99), "x", []byte{1, 2})
	f.Add(uint8(3), int64(math.MaxInt64), "", []byte{})
	f.Add(uint8(4), int64(0), "Δ-dataflow", []byte{})
	f.Add(uint8(5), int64(7), "", []byte{0xff, 0x00, 0x7f, 3, 4, 5})
	f.Fuzz(func(t *testing.T, kind uint8, num int64, s string, vec []byte) {
		v := valueFromSeed(kind, num, s, vec)
		buf := AppendValue(nil, v)
		got, rest, err := ReadValue(buf)
		if err != nil {
			t.Fatalf("ReadValue(%v): %v", v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes decoding %v", len(rest), v)
		}
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Fatalf("round trip %v (%v) -> %v (%v)", v, v.Kind(), got, got.Kind())
		}
	})
}

// FuzzFrameRoundTrip: frames built from fuzzed inputs round-trip, and
// re-encoding the decoded frame reproduces the identical bytes
// (canonical encoding).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(1, uint8(3), int64(12), "a", []byte{9})
	f.Add(1<<20, uint8(5), int64(-1), "", []byte{})
	f.Fuzz(func(t *testing.T, phase int, kind uint8, num int64, s string, vec []byte) {
		if phase < 0 || phase > math.MaxInt32 {
			t.Skip()
		}
		inputs := []core.ExtInput{
			{Vertex: 1 + int(kind)%7, Port: int(num & 3), Val: valueFromSeed(kind, num, s, vec)},
			{Vertex: 2, Port: 0, Val: valueFromSeed(kind+1, num^5, s+"!", vec)},
		}
		payload := AppendFrame(nil, phase, inputs)
		gotPhase, gotInputs, err := DecodeFrame(payload)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if gotPhase != phase || len(gotInputs) != len(inputs) {
			t.Fatalf("frame shape changed: phase %d->%d, inputs %d->%d", phase, gotPhase, len(inputs), len(gotInputs))
		}
		for i := range inputs {
			if gotInputs[i].Vertex != inputs[i].Vertex || gotInputs[i].Port != inputs[i].Port || !gotInputs[i].Val.Equal(inputs[i].Val) {
				t.Fatalf("input %d: %+v != %+v", i, gotInputs[i], inputs[i])
			}
		}
		again := AppendFrame(nil, gotPhase, gotInputs)
		if string(again) != string(payload) {
			t.Fatalf("re-encoding is not canonical: %x != %x", again, payload)
		}
	})
}

// FuzzDecodeFrameHostile: arbitrary bytes never panic and never
// over-allocate — they either decode cleanly or error. An accepted
// frame must survive a re-encode + re-decode with identical semantics
// (byte canonicality is not promised for hostile input: Uvarint
// tolerates non-minimal varints).
func FuzzDecodeFrameHostile(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, 3, []core.ExtInput{{Vertex: 1, Port: 0, Val: event.Int(5)}}))
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{0x01, 0x01, 0x01, 0x00, wireVector, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		phase, inputs, err := DecodeFrame(data)
		if err != nil {
			return
		}
		again := AppendFrame(nil, phase, inputs)
		p2, in2, err := DecodeFrame(again)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if p2 != phase || len(in2) != len(inputs) {
			t.Fatalf("re-decode changed frame: phase %d->%d, %d->%d inputs", phase, p2, len(inputs), len(in2))
		}
		for i := range inputs {
			if in2[i].Vertex != inputs[i].Vertex || in2[i].Port != inputs[i].Port || !in2[i].Val.Equal(inputs[i].Val) {
				t.Fatalf("re-decode changed input %d: %+v != %+v", i, in2[i], inputs[i])
			}
		}
	})
}

// FuzzReadValueHostile: arbitrary bytes never panic ReadValue; an
// accepted value survives re-encode + re-decode unchanged.
func FuzzReadValueHostile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{wireVector, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Add(AppendValue(nil, event.String("seed")))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, _, err := ReadValue(data)
		if err != nil {
			return
		}
		got, rest, err := ReadValue(AppendValue(nil, v))
		if err != nil || len(rest) != 0 || !got.Equal(v) || got.Kind() != v.Kind() {
			t.Fatalf("re-decode of accepted value %v failed: %v (%v, %d left)", v, got, err, len(rest))
		}
	})
}
