package netwire

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// values returns one representative of every payload kind plus the
// edge cases the wire format must preserve exactly.
func values() []event.Value {
	return []event.Value{
		event.None(),
		event.Bool(false),
		event.Bool(true),
		event.Int(0),
		event.Int(1),
		event.Int(-1),
		// ±2^53 is event.Int's documented exact-precision boundary;
		// beyond it AsInt itself is lossy, so the wire cannot do better.
		event.Int(1 << 53),
		event.Int(-(1 << 53)),
		event.Float(0),
		event.Float(math.Copysign(0, -1)),
		event.Float(3.14159),
		event.Float(math.Inf(1)),
		event.Float(math.Inf(-1)),
		event.Float(math.NaN()),
		event.String(""),
		event.String("hospital-occupancy"),
		event.String(strings.Repeat("x", 1000)),
		event.String("unicode: Δ-dataflow ∅"),
		event.Vector([]float64{}),
		event.Vector([]float64{1}),
		event.Vector([]float64{-1.5, math.NaN(), math.Inf(1), 0}),
		event.Vector(make([]float64, 512)),
	}
}

func TestValueRoundTrip(t *testing.T) {
	for _, v := range values() {
		buf := AppendValue(nil, v)
		got, rest, err := ReadValue(buf)
		if err != nil {
			t.Fatalf("ReadValue(%v): %v", v, err)
		}
		if len(rest) != 0 {
			t.Errorf("ReadValue(%v) left %d bytes", v, len(rest))
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
		if got.Kind() != v.Kind() {
			t.Errorf("round trip changed kind: %v -> %v", v.Kind(), got.Kind())
		}
	}
}

// TestValueRoundTripConcatenated: values decode in sequence from one
// buffer, each consuming exactly its own bytes.
func TestValueRoundTripConcatenated(t *testing.T) {
	vs := values()
	var buf []byte
	for _, v := range vs {
		buf = AppendValue(buf, v)
	}
	for i, want := range vs {
		var got event.Value
		var err error
		got, buf, err = ReadValue(buf)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Errorf("value %d: %v != %v", i, got, want)
		}
	}
	if len(buf) != 0 {
		t.Errorf("%d bytes left after all values", len(buf))
	}
}

func TestValueTruncatedRejected(t *testing.T) {
	// Every strict prefix of a value encoding must fail: length fields
	// precede their payloads and varints keep their continuation bit set
	// until the final byte, so a truncation can never pass for a
	// complete (shorter) value.
	for _, v := range values() {
		full := AppendValue(nil, v)
		for cut := 0; cut < len(full); cut++ {
			if _, _, err := ReadValue(full[:cut]); err == nil {
				t.Errorf("truncated %v at %d/%d bytes accepted", v, cut, len(full))
			}
		}
	}
}

func TestValueUnknownKindRejected(t *testing.T) {
	for _, b := range []byte{6, 7, 99, 255} {
		if _, _, err := ReadValue([]byte{b}); err == nil {
			t.Errorf("kind %d accepted", b)
		}
	}
}

func frameInputs() []core.ExtInput {
	return []core.ExtInput{
		{Vertex: 1, Port: 0, Val: event.Int(42)},
		{Vertex: 7, Port: 3, Val: event.String("")},
		{Vertex: 123456, Port: 0, Val: event.Vector([]float64{1, 2, 3})},
		{Vertex: 2, Port: 1, Val: event.None()},
		{Vertex: 9, Port: 0, Val: event.Float(math.NaN())},
		{Vertex: 10, Port: 0, Val: event.Bool(true)},
	}
}

func frameSnaps() []core.VertexSnapshot {
	return []core.VertexSnapshot{
		{Vertex: 3, State: []byte{}},
		{Vertex: 7, State: []byte{0x00}},
		{Vertex: 123456, State: []byte("opaque module state \xff\x00")},
	}
}

func framesEqual(t *testing.T, got, want WireFrame) {
	t.Helper()
	if got.Kind != want.Kind || got.Epoch != want.Epoch || got.Phase != want.Phase {
		t.Errorf("frame header %d/%d/%d != %d/%d/%d",
			got.Kind, got.Epoch, got.Phase, want.Kind, want.Epoch, want.Phase)
	}
	if len(got.Inputs) != len(want.Inputs) {
		t.Fatalf("%d inputs != %d", len(got.Inputs), len(want.Inputs))
	}
	for i := range got.Inputs {
		if got.Inputs[i].Vertex != want.Inputs[i].Vertex || got.Inputs[i].Port != want.Inputs[i].Port {
			t.Errorf("input %d addressing %+v != %+v", i, got.Inputs[i], want.Inputs[i])
		}
		if !got.Inputs[i].Val.Equal(want.Inputs[i].Val) {
			t.Errorf("input %d value %v != %v", i, got.Inputs[i].Val, want.Inputs[i].Val)
		}
	}
	if len(got.Snaps) != len(want.Snaps) {
		t.Fatalf("%d snaps != %d", len(got.Snaps), len(want.Snaps))
	}
	for i := range got.Snaps {
		if got.Snaps[i].Vertex != want.Snaps[i].Vertex || string(got.Snaps[i].State) != string(want.Snaps[i].State) {
			t.Errorf("snapshot %d: %+v != %+v", i, got.Snaps[i], want.Snaps[i])
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		f    WireFrame
	}{
		{"empty", WireFrame{Kind: FrameData, Phase: 1}},
		{"empty high phase", WireFrame{Kind: FrameData, Phase: 1 << 30}},
		{"mixed kinds", WireFrame{Kind: FrameData, Epoch: 2, Phase: 17, Inputs: frameInputs()}},
		{"single", WireFrame{Kind: FrameData, Phase: 2, Inputs: frameInputs()[:1]}},
		{"barrier", WireFrame{Kind: FrameBarrier, Epoch: 3, Phase: 240}},
		{"snapshot", WireFrame{Kind: FrameSnapshot, Epoch: 1, Phase: 9, Snaps: frameSnaps()}},
		{"snapshot empty", WireFrame{Kind: FrameSnapshot, Epoch: 4, Phase: 9}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			payload := AppendFrame(nil, c.f)
			got, err := DecodeFrame(payload)
			if err != nil {
				t.Fatal(err)
			}
			framesEqual(t, got, c.f)
		})
	}
}

// TestRecoveryFrameRoundTrip pins the v4 recovery kinds: rejoin
// frames (with and without a checkpoint to report), the payload-free
// reset/restore commands, and the failed report.
func TestRecoveryFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		f    WireFrame
	}{
		{"rejoin with checkpoint", WireFrame{Kind: FrameRejoin, Epoch: 3, Phase: 120, Done: true, Starts: []int{1, 4, 7}}},
		{"rejoin empty wal", WireFrame{Kind: FrameRejoin, Epoch: 0, Phase: 0, Done: false}},
		{"reset", WireFrame{Kind: FrameReset, Epoch: 5, Phase: 0}},
		{"restore", WireFrame{Kind: FrameRestore, Epoch: 6, Phase: 4}},
		{"failed", WireFrame{Kind: FrameFailed, Epoch: 2, Phase: 88, Msg: "machine 1: link 1->2 closed"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			payload := AppendFrame(nil, c.f)
			got, err := DecodeFrame(payload)
			if err != nil {
				t.Fatal(err)
			}
			framesEqual(t, got, c.f)
			if got.Done != c.f.Done || got.Msg != c.f.Msg || len(got.Starts) != len(c.f.Starts) {
				t.Fatalf("payload changed: %+v -> %+v", c.f, got)
			}
			for i := range got.Starts {
				if got.Starts[i] != c.f.Starts[i] {
					t.Fatalf("starts %v -> %v", c.f.Starts, got.Starts)
				}
			}
		})
	}
}

// TestRecoveryFrameHostileRejected: the rejoin decoder keeps the plan
// decoder's bounds checks even though it additionally allows an empty
// partition.
func TestRecoveryFrameHostileRejected(t *testing.T) {
	header := func(kind uint8) []byte {
		buf := []byte{kind}
		buf = binary.AppendUvarint(buf, 0) // epoch
		buf = binary.AppendUvarint(buf, 1) // phase
		return buf
	}
	// absurd start count
	buf := append(header(FrameRejoin), 1) // has-checkpoint flag
	buf = binary.AppendUvarint(buf, math.MaxInt32)
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("absurd rejoin start count accepted")
	}
	// vertex 0 is not a start
	buf = append(header(FrameRejoin), 1)
	buf = binary.AppendUvarint(buf, 1)
	buf = binary.AppendUvarint(buf, 0)
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("rejoin start 0 accepted")
	}
	// reset/restore must carry no payload
	if _, err := DecodeFrame(append(header(FrameReset), 0)); err == nil {
		t.Error("reset frame with payload accepted")
	}
	if _, err := DecodeFrame(append(header(FrameRestore), 0)); err == nil {
		t.Error("restore frame with payload accepted")
	}
	// truncation of every recovery frame prefix is rejected
	for _, f := range []WireFrame{
		{Kind: FrameRejoin, Epoch: 3, Phase: 9, Done: true, Starts: []int{1, 2, 5}},
		{Kind: FrameFailed, Epoch: 1, Phase: 2, Msg: "boom"},
	} {
		full := AppendFrame(nil, f)
		for cut := 0; cut < len(full); cut++ {
			if _, err := DecodeFrame(full[:cut]); err == nil {
				t.Errorf("kind %d: truncated frame at %d/%d accepted", f.Kind, cut, len(full))
			}
		}
	}
}

func TestFrameTruncatedRejected(t *testing.T) {
	for _, f := range []WireFrame{
		{Kind: FrameData, Epoch: 1, Phase: 99, Inputs: frameInputs()},
		{Kind: FrameSnapshot, Epoch: 2, Phase: 40, Snaps: frameSnaps()},
	} {
		full := AppendFrame(nil, f)
		for cut := 0; cut < len(full); cut++ {
			if _, err := DecodeFrame(full[:cut]); err == nil {
				t.Errorf("kind %d: truncated frame at %d/%d accepted", f.Kind, cut, len(full))
			}
		}
	}
}

func TestFrameTrailingBytesRejected(t *testing.T) {
	for _, f := range []WireFrame{
		{Kind: FrameData, Phase: 5, Inputs: frameInputs()[:2]},
		{Kind: FrameBarrier, Phase: 5},
		{Kind: FrameSnapshot, Phase: 5, Snaps: frameSnaps()[:1]},
	} {
		full := AppendFrame(nil, f)
		if _, err := DecodeFrame(append(full, 0)); err == nil {
			t.Errorf("kind %d: frame with trailing byte accepted", f.Kind)
		}
	}
}

func TestFrameUnknownKindRejected(t *testing.T) {
	buf := []byte{0x7f}
	buf = binary.AppendUvarint(buf, 0) // epoch
	buf = binary.AppendUvarint(buf, 1) // phase
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("unknown frame kind accepted")
	}
}

// TestFrameImplausibleCountsRejected: hostile length fields fail fast
// instead of allocating or over-reading.
func TestFrameImplausibleCountsRejected(t *testing.T) {
	header := func(kind uint8) []byte {
		buf := []byte{kind}
		buf = binary.AppendUvarint(buf, 0) // epoch
		buf = binary.AppendUvarint(buf, 1) // phase
		return buf
	}
	// input count far beyond the payload size
	buf := binary.AppendUvarint(header(FrameData), math.MaxInt32)
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("absurd input count accepted")
	}
	// vertex 0 is not a vertex
	buf = binary.AppendUvarint(header(FrameData), 1)
	buf = binary.AppendUvarint(buf, 0) // vertex
	buf = binary.AppendUvarint(buf, 0) // port
	buf = AppendValue(buf, event.Int(1))
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("vertex 0 accepted")
	}
	// snapshot count far beyond the payload size
	buf = binary.AppendUvarint(header(FrameSnapshot), math.MaxInt32)
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("absurd snapshot count accepted")
	}
	// snapshot state length beyond the remaining bytes
	buf = binary.AppendUvarint(header(FrameSnapshot), 1)
	buf = binary.AppendUvarint(buf, 1)     // vertex
	buf = binary.AppendUvarint(buf, 1<<30) // state length
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("absurd snapshot state length accepted")
	}
	// vector claiming more elements than bytes remain
	buf = []byte{wireVector}
	buf = binary.AppendUvarint(buf, 1<<40)
	if _, _, err := ReadValue(buf); err == nil {
		t.Error("absurd vector length accepted")
	}
	// string claiming more bytes than remain
	buf = []byte{wireString}
	buf = binary.AppendUvarint(buf, 1<<30)
	if _, _, err := ReadValue(buf); err == nil {
		t.Error("absurd string length accepted")
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	var b strings.Builder
	hs := Handshake{From: 3, To: 11, Window: 8}
	if err := writeHandshake(&b, hs); err != nil {
		t.Fatal(err)
	}
	got, err := readHandshake(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got != hs {
		t.Errorf("handshake %+v != %+v", got, hs)
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"short":       "FWR1",
		"bad magic":   "NOPE" + strings.Repeat("\x00", 13),
		"bad version": "FWR1\x7f" + strings.Repeat("\x00", 12),
		// valid magic+version but zero window
		"zero window": "FWR1\x01" + strings.Repeat("\x00", 12),
	}
	for name, raw := range cases {
		if _, err := readHandshake(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
