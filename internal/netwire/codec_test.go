package netwire

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// values returns one representative of every payload kind plus the
// edge cases the wire format must preserve exactly.
func values() []event.Value {
	return []event.Value{
		event.None(),
		event.Bool(false),
		event.Bool(true),
		event.Int(0),
		event.Int(1),
		event.Int(-1),
		// ±2^53 is event.Int's documented exact-precision boundary;
		// beyond it AsInt itself is lossy, so the wire cannot do better.
		event.Int(1 << 53),
		event.Int(-(1 << 53)),
		event.Float(0),
		event.Float(math.Copysign(0, -1)),
		event.Float(3.14159),
		event.Float(math.Inf(1)),
		event.Float(math.Inf(-1)),
		event.Float(math.NaN()),
		event.String(""),
		event.String("hospital-occupancy"),
		event.String(strings.Repeat("x", 1000)),
		event.String("unicode: Δ-dataflow ∅"),
		event.Vector([]float64{}),
		event.Vector([]float64{1}),
		event.Vector([]float64{-1.5, math.NaN(), math.Inf(1), 0}),
		event.Vector(make([]float64, 512)),
	}
}

func TestValueRoundTrip(t *testing.T) {
	for _, v := range values() {
		buf := AppendValue(nil, v)
		got, rest, err := ReadValue(buf)
		if err != nil {
			t.Fatalf("ReadValue(%v): %v", v, err)
		}
		if len(rest) != 0 {
			t.Errorf("ReadValue(%v) left %d bytes", v, len(rest))
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
		if got.Kind() != v.Kind() {
			t.Errorf("round trip changed kind: %v -> %v", v.Kind(), got.Kind())
		}
	}
}

// TestValueRoundTripConcatenated: values decode in sequence from one
// buffer, each consuming exactly its own bytes.
func TestValueRoundTripConcatenated(t *testing.T) {
	vs := values()
	var buf []byte
	for _, v := range vs {
		buf = AppendValue(buf, v)
	}
	for i, want := range vs {
		var got event.Value
		var err error
		got, buf, err = ReadValue(buf)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Errorf("value %d: %v != %v", i, got, want)
		}
	}
	if len(buf) != 0 {
		t.Errorf("%d bytes left after all values", len(buf))
	}
}

func TestValueTruncatedRejected(t *testing.T) {
	// Every strict prefix of a value encoding must fail: length fields
	// precede their payloads and varints keep their continuation bit set
	// until the final byte, so a truncation can never pass for a
	// complete (shorter) value.
	for _, v := range values() {
		full := AppendValue(nil, v)
		for cut := 0; cut < len(full); cut++ {
			if _, _, err := ReadValue(full[:cut]); err == nil {
				t.Errorf("truncated %v at %d/%d bytes accepted", v, cut, len(full))
			}
		}
	}
}

func TestValueUnknownKindRejected(t *testing.T) {
	for _, b := range []byte{6, 7, 99, 255} {
		if _, _, err := ReadValue([]byte{b}); err == nil {
			t.Errorf("kind %d accepted", b)
		}
	}
}

func frameInputs() []core.ExtInput {
	return []core.ExtInput{
		{Vertex: 1, Port: 0, Val: event.Int(42)},
		{Vertex: 7, Port: 3, Val: event.String("")},
		{Vertex: 123456, Port: 0, Val: event.Vector([]float64{1, 2, 3})},
		{Vertex: 2, Port: 1, Val: event.None()},
		{Vertex: 9, Port: 0, Val: event.Float(math.NaN())},
		{Vertex: 10, Port: 0, Val: event.Bool(true)},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		phase  int
		inputs []core.ExtInput
	}{
		{"empty", 1, nil},
		{"empty high phase", 1 << 30, nil},
		{"mixed kinds", 17, frameInputs()},
		{"single", 2, frameInputs()[:1]},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			payload := AppendFrame(nil, c.phase, c.inputs)
			phase, inputs, err := DecodeFrame(payload)
			if err != nil {
				t.Fatal(err)
			}
			if phase != c.phase {
				t.Errorf("phase %d != %d", phase, c.phase)
			}
			if len(inputs) != len(c.inputs) {
				t.Fatalf("%d inputs != %d", len(inputs), len(c.inputs))
			}
			for i := range inputs {
				if inputs[i].Vertex != c.inputs[i].Vertex || inputs[i].Port != c.inputs[i].Port {
					t.Errorf("input %d addressing %+v != %+v", i, inputs[i], c.inputs[i])
				}
				if !inputs[i].Val.Equal(c.inputs[i].Val) {
					t.Errorf("input %d value %v != %v", i, inputs[i].Val, c.inputs[i].Val)
				}
			}
		})
	}
}

func TestFrameTruncatedRejected(t *testing.T) {
	full := AppendFrame(nil, 99, frameInputs())
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeFrame(full[:cut]); err == nil {
			t.Errorf("truncated frame at %d/%d accepted", cut, len(full))
		}
	}
}

func TestFrameTrailingBytesRejected(t *testing.T) {
	full := AppendFrame(nil, 5, frameInputs()[:2])
	if _, _, err := DecodeFrame(append(full, 0)); err == nil {
		t.Error("frame with trailing byte accepted")
	}
}

// TestFrameImplausibleCountsRejected: hostile length fields fail fast
// instead of allocating or over-reading.
func TestFrameImplausibleCountsRejected(t *testing.T) {
	// input count far beyond the payload size
	buf := binary.AppendUvarint(nil, 1)            // phase
	buf = binary.AppendUvarint(buf, math.MaxInt32) // claimed inputs
	if _, _, err := DecodeFrame(buf); err == nil {
		t.Error("absurd input count accepted")
	}
	// vertex 0 is not a vertex
	buf = binary.AppendUvarint(nil, 1)
	buf = binary.AppendUvarint(buf, 1)
	buf = binary.AppendUvarint(buf, 0) // vertex
	buf = binary.AppendUvarint(buf, 0) // port
	buf = AppendValue(buf, event.Int(1))
	if _, _, err := DecodeFrame(buf); err == nil {
		t.Error("vertex 0 accepted")
	}
	// vector claiming more elements than bytes remain
	buf = []byte{wireVector}
	buf = binary.AppendUvarint(buf, 1<<40)
	if _, _, err := ReadValue(buf); err == nil {
		t.Error("absurd vector length accepted")
	}
	// string claiming more bytes than remain
	buf = []byte{wireString}
	buf = binary.AppendUvarint(buf, 1<<30)
	if _, _, err := ReadValue(buf); err == nil {
		t.Error("absurd string length accepted")
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	var b strings.Builder
	hs := Handshake{From: 3, To: 11, Window: 8}
	if err := writeHandshake(&b, hs); err != nil {
		t.Fatal(err)
	}
	got, err := readHandshake(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got != hs {
		t.Errorf("handshake %+v != %+v", got, hs)
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"short":       "FWR1",
		"bad magic":   "NOPE" + strings.Repeat("\x00", 13),
		"bad version": "FWR1\x7f" + strings.Repeat("\x00", 12),
		// valid magic+version but zero window
		"zero window": "FWR1\x01" + strings.Repeat("\x00", 12),
	}
	for name, raw := range cases {
		if _, err := readHandshake(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
