package netwire

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// rawDial performs the handshake by hand and returns the naked
// connection, so a test can cut the stream at any byte.
func rawDial(t *testing.T, addr string, hs Handshake) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeHandshake(conn, hs); err != nil {
		t.Fatal(err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != ackByte {
		t.Fatalf("no ack: %v", err)
	}
	return conn
}

// acceptOne runs AcceptAny in the background and returns its result
// channel.
func acceptOne(ln *Listener) chan struct {
	rl  *RecvLink
	ctl *CtlConn
	err error
} {
	acc := make(chan struct {
		rl  *RecvLink
		ctl *CtlConn
		err error
	}, 1)
	go func() {
		rl, ctl, err := ln.AcceptAny()
		acc <- struct {
			rl  *RecvLink
			ctl *CtlConn
			err error
		}{rl, ctl, err}
	}()
	return acc
}

// TestCtlTruncatedFrame: a control peer dying mid-frame surfaces
// ErrTruncatedFrame — distinguishable with errors.Is from the io.EOF a
// clean shutdown produces (which TestCtlConnRoundTrip pins).
func TestCtlTruncatedFrame(t *testing.T) {
	cuts := []struct {
		name  string
		bytes []byte // what the dying peer managed to write
	}{
		{"mid prefix", []byte{0x00, 0x00}},
		{"mid payload", []byte{0x00, 0x00, 0x00, 0x0A, FramePoll, 0x00}},
	}
	for _, cut := range cuts {
		t.Run(cut.name, func(t *testing.T) {
			ln, err := Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			acc := acceptOne(ln)
			conn := rawDial(t, ln.Addr(), Handshake{From: 1, To: 0, Window: 1, Ctl: true})
			a := <-acc
			if a.err != nil {
				t.Fatal(a.err)
			}
			if _, err := conn.Write(cut.bytes); err != nil {
				t.Fatal(err)
			}
			conn.Close()
			_, err = a.ctl.Recv()
			if !errors.Is(err, ErrTruncatedFrame) {
				t.Fatalf("Recv after mid-frame close: %v, want ErrTruncatedFrame", err)
			}
			a.ctl.Close()
		})
	}
}

// TestLinkTruncatedFrame: the same distinction on a data link — a
// sender dying mid-frame is ErrTruncatedFrame on Err, while a clean
// half-close after complete frames is a nil Err.
func TestLinkTruncatedFrame(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acc := acceptOne(ln)
	conn := rawDial(t, ln.Addr(), Handshake{From: 0, To: 1, Window: 2})
	a := <-acc
	if a.err != nil {
		t.Fatal(a.err)
	}
	// One complete frame, then a torn one.
	payload := AppendFrame(nil, WireFrame{Kind: FrameBarrier, Epoch: 1, Phase: 7})
	whole := append([]byte{0, 0, 0, byte(len(payload))}, payload...)
	whole = append(whole, 0x00, 0x00, 0x00, 0x20, FrameData) // torn: claims 32 bytes
	if _, err := conn.Write(whole); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	f, ok := a.rl.Recv()
	if !ok || f.Kind != FrameBarrier {
		t.Fatalf("complete frame before the tear not delivered: %+v ok=%v", f, ok)
	}
	if _, ok := a.rl.Recv(); ok {
		t.Fatal("torn frame delivered")
	}
	if err := a.rl.Err(); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("Err after mid-frame close: %v, want ErrTruncatedFrame", err)
	}
}

// TestLinkCleanCloseNotTruncated: a clean half-close on a frame
// boundary must not read as truncation.
func TestLinkCleanCloseNotTruncated(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acc := acceptOne(ln)
	conn := rawDial(t, ln.Addr(), Handshake{From: 0, To: 1, Window: 2})
	a := <-acc
	if a.err != nil {
		t.Fatal(a.err)
	}
	payload := AppendFrame(nil, WireFrame{Kind: FrameBarrier, Epoch: 0, Phase: 3})
	frame := append([]byte{0, 0, 0, byte(len(payload))}, payload...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		conn.Close()
	}
	if f, ok := a.rl.Recv(); !ok || f.Kind != FrameBarrier {
		t.Fatalf("frame not delivered: %+v ok=%v", f, ok)
	}
	if _, ok := a.rl.Recv(); ok {
		t.Fatal("frame after clean close")
	}
	if err := a.rl.Err(); err != nil {
		t.Fatalf("clean close produced %v", err)
	}
	conn.Close()
	// Give the reader goroutine a beat to finish closing.
	time.Sleep(10 * time.Millisecond)
}
