package netwire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// CtlConn is a full-duplex control channel between a rebalancing
// coordinator and one participant process (DESIGN.md §9). Unlike a
// data link it carries no credit window — control traffic is a
// low-rate request/response protocol, so plain length-prefixed frames
// in both directions suffice. Send is safe for concurrent use; Recv
// must be driven from a single goroutine.
type CtlConn struct {
	conn    net.Conn
	hs      Handshake
	maxSize int

	wmu  sync.Mutex
	wbuf []byte

	rbuf      []byte
	closeOnce sync.Once
}

func newCtlConn(conn net.Conn, hs Handshake, maxSize int) *CtlConn {
	return &CtlConn{conn: conn, hs: hs, maxSize: maxSize}
}

// DialCtl connects the control channel from participant machine `from`
// to the coordinator machine `to` at addr, performing the v3 handshake
// with the control channel-kind and waiting for the acceptor's ack.
func DialCtl(addr string, from, to int) (*CtlConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netwire: dial ctl %d->%d at %s: %w", from, to, addr, err)
	}
	hs := Handshake{From: from, To: to, Window: 1, Ctl: true}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := writeHandshake(conn, hs); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netwire: ctl handshake %d->%d at %s: %w", from, to, addr, err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != ackByte {
		conn.Close()
		return nil, fmt.Errorf("netwire: ctl channel %d->%d at %s not acknowledged: %v", from, to, addr, err)
	}
	conn.SetDeadline(time.Time{})
	return newCtlConn(conn, hs, DefaultMaxFrame), nil
}

// Handshake returns the channel identity the dialer declared.
func (c *CtlConn) Handshake() Handshake { return c.hs }

// Send encodes and writes one control frame. Safe for concurrent use.
func (c *CtlConn) Send(f WireFrame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = AppendFrame(c.wbuf[:0], f)
	if len(c.wbuf) > c.maxSize {
		return fmt.Errorf("netwire: ctl %d->%d: frame of %d bytes exceeds max %d", c.hs.From, c.hs.To, len(c.wbuf), c.maxSize)
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(c.wbuf)))
	if _, err := c.conn.Write(prefix[:]); err != nil {
		return fmt.Errorf("netwire: ctl %d->%d: %w", c.hs.From, c.hs.To, err)
	}
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return fmt.Errorf("netwire: ctl %d->%d: %w", c.hs.From, c.hs.To, err)
	}
	return nil
}

// Recv blocks for the next control frame. A clean peer close returns
// io.EOF; anything else is the wire-level root cause. Single-goroutine.
func (c *CtlConn) Recv() (WireFrame, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(c.conn, prefix[:]); err != nil {
		if err == io.EOF {
			return WireFrame{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return WireFrame{}, fmt.Errorf("%w on ctl %d->%d: partial frame length: %v", ErrTruncatedFrame, c.hs.From, c.hs.To, err)
		}
		return WireFrame{}, fmt.Errorf("netwire: ctl %d->%d: reading frame length: %w", c.hs.From, c.hs.To, err)
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > uint32(c.maxSize) {
		return WireFrame{}, fmt.Errorf("netwire: ctl %d->%d: frame length %d exceeds max %d", c.hs.From, c.hs.To, n, c.maxSize)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if _, err := io.ReadFull(c.conn, c.rbuf); err != nil {
		return WireFrame{}, fmt.Errorf("%w on ctl %d->%d: %v", ErrTruncatedFrame, c.hs.From, c.hs.To, err)
	}
	f, err := DecodeFrame(c.rbuf)
	if err != nil {
		return WireFrame{}, fmt.Errorf("netwire: ctl %d->%d: %w", c.hs.From, c.hs.To, err)
	}
	return f, nil
}

// Close tears the channel down. Any blocked Recv on either side
// returns an error. Idempotent.
func (c *CtlConn) Close() error {
	c.closeOnce.Do(func() { c.conn.Close() })
	return nil
}
