package netwire

import (
	"io"
	"strings"
	"testing"
	"time"
)

// TestCtlConnRoundTrip: a dialed control channel carries frames in
// both directions through the codec, AcceptAny classifies it as
// control, and a clean close surfaces io.EOF on the peer.
func TestCtlConnRoundTrip(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		ctl *CtlConn
		err error
	}
	acc := make(chan accepted, 1)
	go func() {
		rl, ctl, err := ln.AcceptAny()
		if err == nil && rl != nil {
			t.Error("data link accepted for a control handshake")
		}
		acc <- accepted{ctl, err}
	}()
	dialer, err := DialCtl(ln.Addr(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := <-acc
	if a.err != nil {
		t.Fatal(a.err)
	}
	server := a.ctl
	if hs := server.Handshake(); hs.From != 2 || hs.To != 0 || !hs.Ctl {
		t.Fatalf("handshake = %+v", hs)
	}

	// Participant → coordinator, then a reply back.
	if err := dialer.Send(WireFrame{Kind: FrameQuiesced, Epoch: 1, Phase: 40, Times: []int64{3, 0, -7}}); err != nil {
		t.Fatal(err)
	}
	f, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameQuiesced || f.Epoch != 1 || f.Phase != 40 || len(f.Times) != 3 || f.Times[2] != -7 {
		t.Fatalf("received %+v", f)
	}
	if err := server.Send(WireFrame{Kind: FramePlan, Epoch: 2, Phase: 40, Starts: []int{1, 4}}); err != nil {
		t.Fatal(err)
	}
	f, err = dialer.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FramePlan || len(f.Starts) != 2 || f.Starts[1] != 4 {
		t.Fatalf("received %+v", f)
	}

	dialer.Close()
	if _, err := server.Recv(); err != io.EOF {
		t.Fatalf("peer close surfaced %v, want io.EOF", err)
	}
}

// TestBackoffSchedule pins the retry schedule: exponential delays from
// Base by Factor, capped at Max, over exactly Attempts dials.
func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		name  string
		b     Backoff
		want  []time.Duration // Delay(0), Delay(1), ...
		total time.Duration
	}{
		{
			name:  "defaults",
			b:     Backoff{},
			want:  []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond, time.Second, time.Second, time.Second},
			total: 4575 * time.Millisecond,
		},
		{
			name:  "capped fast",
			b:     Backoff{Base: 10 * time.Millisecond, Factor: 3, Max: 50 * time.Millisecond, Attempts: 5},
			want:  []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond, 50 * time.Millisecond},
			total: 140 * time.Millisecond,
		},
		{
			name:  "constant (factor below one clamps to one)",
			b:     Backoff{Base: 5 * time.Millisecond, Factor: 0.1, Max: time.Second, Attempts: 4},
			want:  []time.Duration{5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond},
			total: 15 * time.Millisecond,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i, want := range tc.want {
				if got := tc.b.Delay(i); got != want {
					t.Errorf("Delay(%d) = %v, want %v", i, got, want)
				}
			}
			if got := tc.b.Total(); got != tc.total {
				t.Errorf("Total() = %v, want %v", got, tc.total)
			}
		})
	}
}

// TestDialRetryBounded: when nothing ever listens, the retry loop
// exhausts its attempt budget and surfaces the final dial error — no
// unbounded retry, no hang.
func TestDialRetryBounded(t *testing.T) {
	// A port that was listening and is now closed: dials fail fast.
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	ln.Close()
	bo := Backoff{Base: time.Millisecond, Factor: 1, Max: time.Millisecond, Attempts: 3}
	t0 := time.Now()
	_, err = DialCtlRetry(addr, 1, 0, bo)
	if err == nil || !strings.Contains(err.Error(), "3 attempts exhausted") {
		t.Fatalf("dead peer produced %v, want the attempt budget named", err)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Errorf("3 bounded attempts took %v", elapsed)
	}
}

// TestDialRetryRecovers: a peer that starts listening after the first
// failures is eventually reached — the boot-window (and between-epoch
// rewiring) behavior the schedule exists for.
func TestDialRetryRecovers(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	ln.Close() // free the port; nobody is listening yet

	done := make(chan error, 1)
	go func() {
		_, err := DialCtlRetry(addr, 1, 0, Backoff{Base: 10 * time.Millisecond, Factor: 1, Attempts: 200})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	ln2, err := Listen(addr)
	if err != nil {
		t.Skipf("could not re-bind %s: %v", addr, err)
	}
	defer ln2.Close()
	go func() {
		for {
			if _, _, err := ln2.AcceptAny(); err != nil {
				return
			}
		}
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("dial never recovered: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retry loop did not complete")
	}
}
