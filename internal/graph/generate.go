package graph

import "math/rand/v2"

// The generators in this file build the DAG families used throughout the
// test suite and the experiment harness. All randomness is drawn from a
// caller-supplied seed so that every workload is reproducible.

// Chain returns a path graph v1 -> v2 -> ... -> vn. Chains maximize
// pipeline depth per vertex and are the worst case for intra-phase
// parallelism.
func Chain(n int) *Graph {
	g := New()
	g.AddVertices(n)
	for i := 0; i+1 < n; i++ {
		g.MustEdge(i, i+1)
	}
	return g
}

// Diamond returns the classic 4-vertex diamond: one source fanning out to
// two parallel vertices that join at a sink. The smallest graph where
// Δ-dataflow readiness is nontrivial (the join must learn about absent
// messages).
func Diamond() *Graph {
	g := New()
	s := g.AddVertex("src")
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	t := g.AddVertex("sink")
	g.MustEdge(s, a)
	g.MustEdge(s, b)
	g.MustEdge(a, t)
	g.MustEdge(b, t)
	return g
}

// Layered returns a graph of depth layers each containing width vertices.
// Every vertex in layer i+1 receives edges from fanin randomly chosen
// vertices of layer i (or all of them when fanin >= width). Layer 0
// vertices are sources. This is the standard workload topology for the
// scaling experiments: depth controls pipelining, width controls
// intra-phase parallelism.
func Layered(depth, width, fanin int, rng *rand.Rand) *Graph {
	g := New()
	prev := make([]int, 0, width)
	cur := make([]int, 0, width)
	for l := 0; l < depth; l++ {
		cur = cur[:0]
		for i := 0; i < width; i++ {
			cur = append(cur, g.AddVertices(1))
		}
		if l > 0 {
			for _, w := range cur {
				if fanin >= width {
					for _, u := range prev {
						g.MustEdge(u, w)
					}
					continue
				}
				// Sample fanin distinct predecessors from prev.
				perm := rng.Perm(len(prev))
				for k := 0; k < fanin && k < len(perm); k++ {
					g.MustEdge(prev[perm[k]], w)
				}
			}
		}
		prev = append(prev[:0], cur...)
	}
	return g
}

// Random returns a DAG with n vertices where each ordered pair (i, j),
// i < j in construction order, is an edge with probability p. Vertices
// that end up with no predecessors are sources. Used by the property
// tests to exercise the numbering and engine on unstructured topologies.
func Random(n int, p float64, rng *rand.Rand) *Graph {
	g := New()
	g.AddVertices(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.MustEdge(i, j)
			}
		}
	}
	return g
}

// RandomConnected is Random but guarantees every non-first vertex has at
// least one predecessor (a single connected "correlation network" with
// vertex 0 as the only source unless p adds more structure). Sink-heavy
// graphs stress the frontier bookkeeping.
func RandomConnected(n int, p float64, rng *rand.Rand) *Graph {
	g := New()
	g.AddVertices(n)
	for j := 1; j < n; j++ {
		// guaranteed predecessor, uniform among earlier vertices
		g.MustEdge(rng.IntN(j), j)
		for i := 0; i < j; i++ {
			if rng.Float64() < p {
				// AddEdge rejects duplicates; ignore those.
				_ = g.AddEdge(i, j)
			}
		}
	}
	return g
}

// FanInTree returns a complete k-ary in-tree with the given number of
// leaves: leaves are sources, internal vertices aggregate k children, and
// the root is the single sink. Models hierarchical sensor aggregation.
func FanInTree(leaves, k int) *Graph {
	g := New()
	level := make([]int, 0, leaves)
	for i := 0; i < leaves; i++ {
		level = append(level, g.AddVertices(1))
	}
	for len(level) > 1 {
		next := make([]int, 0, (len(level)+k-1)/k)
		for i := 0; i < len(level); i += k {
			parent := g.AddVertices(1)
			for j := i; j < i+k && j < len(level); j++ {
				g.MustEdge(level[j], parent)
			}
			next = append(next, parent)
		}
		level = next
	}
	return g
}

// FanOutIn returns a graph with one source fanning out to width parallel
// workers that all join into one sink — the maximum intra-phase
// parallelism per vertex count.
func FanOutIn(width int) *Graph {
	g := New()
	src := g.AddVertex("src")
	sink := g.AddVertex("sink")
	_ = sink
	mid := make([]int, width)
	for i := range mid {
		mid[i] = g.AddVertices(1)
		g.MustEdge(src, mid[i])
	}
	for _, m := range mid {
		g.MustEdge(m, sink)
	}
	return g
}

// Figure1 returns the 10-node graph of Figure 1 of the paper: a pipeline
// of five 2-vertex stages in which five phases can execute concurrently.
// The figure does not label edges, so we use the canonical reading — a
// ladder: each stage has two vertices, each feeding both vertices of the
// next stage.
func Figure1() *Graph {
	g := New()
	ids := make([]int, 10)
	for i := range ids {
		ids[i] = g.AddVertices(1)
	}
	for stage := 0; stage < 4; stage++ {
		a, b := ids[2*stage], ids[2*stage+1]
		c, d := ids[2*stage+2], ids[2*stage+3]
		g.MustEdge(a, c)
		g.MustEdge(a, d)
		g.MustEdge(b, c)
		g.MustEdge(b, d)
	}
	return g
}

// Figure2 returns the 7-vertex graph used in Figure 2 of the paper,
// along with the two numberings shown there: perm (a), which is
// topologically sorted but violates the S-prefix restriction, and perm
// (b), which satisfies it. Construction IDs 0..6 correspond to the
// vertices labelled 1..7 in subfigure (b).
//
// The topology is reconstructed from the S-sequences the paper prints.
// In (b)-labels: sources are 1, 2, 3; lastPred(4) = 2 (S(2) gains 4),
// lastPred(5) = 3 (S(3) gains 5), lastPred(6) = 5 (S(5) gains 6), and
// lastPred(7) = 6. In (a), where labels 4 and 5 are transposed,
// S(2) = {1,2,3,5} is not a prefix — 4 is missing — and S(4) gains 6,
// forcing vertex 4 (= (b)'s 5) to be 6's deepest predecessor and ruling
// out an edge 4→6 in (b)-labels. Edges: 1→4, 2→4, 3→5, 5→6, 6→7, 4→7.
//
//	(b): m = [3, 3, 4, 5, 5, 6, 7, 7]   (the sequence printed in §3.1.1)
func Figure2() (g *Graph, permA, permB []int) {
	g = New()
	v1 := g.AddVertex("1")
	v2 := g.AddVertex("2")
	v3 := g.AddVertex("3")
	v4 := g.AddVertex("4") // labelled 5 in subfigure (a)
	v5 := g.AddVertex("5") // labelled 4 in subfigure (a)
	v6 := g.AddVertex("6")
	v7 := g.AddVertex("7")
	g.MustEdge(v1, v4)
	g.MustEdge(v2, v4)
	g.MustEdge(v3, v5)
	g.MustEdge(v5, v6)
	g.MustEdge(v6, v7)
	g.MustEdge(v4, v7)
	// Permutations map construction ID -> assigned index.
	permB = []int{1, 2, 3, 4, 5, 6, 7}
	// Subfigure (a) transposes the labels of the two middle vertices.
	permA = []int{1, 2, 3, 5, 4, 6, 7}
	return g, permA, permB
}

// Figure3 returns the 6-vertex graph used in the execution walkthrough of
// Figure 3. From the figure: sources 1 and 2; vertex 3 reads 1 and 2;
// vertex 4 reads 2; vertex 5 reads 3 and 4; vertex 6 reads 4 (a sink
// alongside 5).
func Figure3() *Graph {
	g := New()
	v1 := g.AddVertex("1")
	v2 := g.AddVertex("2")
	v3 := g.AddVertex("3")
	v4 := g.AddVertex("4")
	v5 := g.AddVertex("5")
	v6 := g.AddVertex("6")
	g.MustEdge(v1, v3)
	g.MustEdge(v2, v3)
	g.MustEdge(v2, v4)
	g.MustEdge(v3, v5)
	g.MustEdge(v4, v5)
	g.MustEdge(v4, v6)
	return g
}
