package graph

import (
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustNumber(t *testing.T, g *Graph) *Numbered {
	t.Helper()
	ng, err := g.Number()
	if err != nil {
		t.Fatalf("Number: %v", err)
	}
	return ng
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(a, b); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(a, 99); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := g.AddEdge(-1, b); err == nil {
		t.Error("out-of-range source accepted")
	}
	if g.Edges() != 1 {
		t.Errorf("Edges() = %d, want 1", g.Edges())
	}
}

func TestMustEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEdge did not panic on invalid edge")
		}
	}()
	g := New()
	a := g.AddVertex("a")
	g.MustEdge(a, a)
}

func TestNumberCycleDetection(t *testing.T) {
	g := New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	g.MustEdge(a, b)
	g.MustEdge(b, c)
	g.MustEdge(c, a)
	if _, err := g.Number(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestNumberEmptyAndSingle(t *testing.T) {
	g := New()
	ng := mustNumber(t, g)
	if ng.N() != 0 {
		t.Errorf("empty graph N = %d", ng.N())
	}
	g2 := New()
	g2.AddVertex("only")
	ng2 := mustNumber(t, g2)
	if ng2.N() != 1 || ng2.Sources() != 1 || !ng2.IsSink(1) {
		t.Errorf("single vertex: N=%d sources=%d sink=%v", ng2.N(), ng2.Sources(), ng2.IsSink(1))
	}
	if ng2.M(0) != 1 || ng2.M(1) != 1 {
		t.Errorf("single vertex m = %v", ng2.MSequence())
	}
}

func TestChainNumbering(t *testing.T) {
	ng := mustNumber(t, Chain(5))
	if ng.Sources() != 1 {
		t.Errorf("chain sources = %d", ng.Sources())
	}
	if ng.Depth() != 5 {
		t.Errorf("chain depth = %d", ng.Depth())
	}
	// In a chain, m(v) = v+1 for v < N: knowing vertex v finished lets
	// exactly v+1 execute.
	for v := 0; v < 5; v++ {
		if ng.M(v) != v+1 {
			t.Errorf("chain m(%d) = %d, want %d", v, ng.M(v), v+1)
		}
	}
	if ng.M(5) != 5 {
		t.Errorf("chain m(N) = %d", ng.M(5))
	}
}

func TestDiamondStructure(t *testing.T) {
	ng := mustNumber(t, Diamond())
	if ng.Sources() != 1 {
		t.Errorf("diamond sources = %d", ng.Sources())
	}
	if ng.Depth() != 3 {
		t.Errorf("diamond depth = %d", ng.Depth())
	}
	if got := ng.MSequence(); !reflect.DeepEqual(got, []int{1, 3, 3, 4, 4}) {
		t.Errorf("diamond m = %v, want [1 3 3 4 4]", got)
	}
	sink := 4
	if !ng.IsSink(sink) || ng.InDegree(sink) != 2 {
		t.Errorf("diamond sink wrong: sink=%v indeg=%d", ng.IsSink(sink), ng.InDegree(sink))
	}
}

func TestFigure2Numberings(t *testing.T) {
	g, permA, permB := Figure2()
	// The paper: numbering (a) is topologically sorted but fails the
	// restriction; numbering (b) satisfies it.
	if err := g.CheckIndexing(permB); err != nil {
		t.Errorf("numbering (b) rejected: %v", err)
	}
	if err := g.CheckIndexing(permA); err == nil {
		t.Error("numbering (a) accepted; paper says S(2) = {1,2,3,5} is not a prefix")
	} else if !strings.Contains(err.Error(), "prefix") {
		t.Errorf("numbering (a) rejected for wrong reason: %v", err)
	}
}

func TestFigure2MSequence(t *testing.T) {
	g, _, permB := Figure2()
	ng := mustNumber(t, g)
	want := []int{3, 3, 4, 5, 5, 6, 7, 7} // §3.1.1 of the paper
	if got := ng.MSequence(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Figure 2(b) m-sequence = %v, want %v", got, want)
	}
	// Our FIFO-Kahn numbering should coincide with the paper's (b)
	// numbering for this construction order.
	for id, idx := range permB {
		if ng.IndexOf(id) != idx {
			t.Errorf("vertex %s numbered %d, paper gives %d", g.Name(id), ng.IndexOf(id), idx)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	ng := mustNumber(t, Figure1())
	if ng.N() != 10 {
		t.Fatalf("Figure1 N = %d", ng.N())
	}
	if ng.Sources() != 2 {
		t.Errorf("Figure1 sources = %d, want 2", ng.Sources())
	}
	if ng.Depth() != 5 {
		t.Errorf("Figure1 depth = %d, want 5 (five pipeline stages)", ng.Depth())
	}
}

func TestFigure3Shape(t *testing.T) {
	ng := mustNumber(t, Figure3())
	if ng.N() != 6 || ng.Sources() != 2 {
		t.Fatalf("Figure3 N=%d sources=%d", ng.N(), ng.Sources())
	}
	want := []int{2, 2, 4, 4, 6, 6, 6}
	if got := ng.MSequence(); !reflect.DeepEqual(got, want) {
		t.Errorf("Figure3 m = %v, want %v", got, want)
	}
	if !ng.IsSink(5) || !ng.IsSink(6) {
		t.Errorf("Figure3 sinks: 5=%v 6=%v", ng.IsSink(5), ng.IsSink(6))
	}
}

func TestPortOf(t *testing.T) {
	ng := mustNumber(t, Diamond())
	sink := 4
	preds := ng.Pred(sink)
	if len(preds) != 2 {
		t.Fatalf("sink preds = %v", preds)
	}
	if ng.PortOf(preds[0], sink) != 0 || ng.PortOf(preds[1], sink) != 1 {
		t.Errorf("ports: %d %d", ng.PortOf(preds[0], sink), ng.PortOf(preds[1], sink))
	}
	defer func() {
		if recover() == nil {
			t.Error("PortOf on non-edge did not panic")
		}
	}()
	ng.PortOf(2, 3) // siblings, no edge
}

func TestLevels(t *testing.T) {
	ng := mustNumber(t, Chain(4))
	if got := ng.Levels(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("chain levels = %v", got)
	}
	ngd := mustNumber(t, Diamond())
	if got := ngd.Levels(); !reflect.DeepEqual(got, []int{0, 1, 1, 2}) {
		t.Errorf("diamond levels = %v", got)
	}
}

func TestFanInTree(t *testing.T) {
	ng := mustNumber(t, FanInTree(8, 2))
	if ng.Sources() != 8 {
		t.Errorf("tree sources = %d", ng.Sources())
	}
	if ng.N() != 15 { // 8 + 4 + 2 + 1
		t.Errorf("tree N = %d, want 15", ng.N())
	}
	sinks := 0
	for v := 1; v <= ng.N(); v++ {
		if ng.IsSink(v) {
			sinks++
		}
	}
	if sinks != 1 {
		t.Errorf("tree sinks = %d, want 1", sinks)
	}
}

func TestFanOutIn(t *testing.T) {
	ng := mustNumber(t, FanOutIn(6))
	if ng.Sources() != 1 || ng.N() != 8 || ng.Depth() != 3 {
		t.Errorf("fan-out-in: sources=%d N=%d depth=%d", ng.Sources(), ng.N(), ng.Depth())
	}
}

func TestLayeredShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	ng := mustNumber(t, Layered(4, 5, 2, rng))
	if ng.N() != 20 || ng.Sources() != 5 || ng.Depth() != 4 {
		t.Errorf("layered: N=%d sources=%d depth=%d", ng.N(), ng.Sources(), ng.Depth())
	}
	// every non-source vertex has exactly fanin=2 predecessors
	for v := ng.Sources() + 1; v <= ng.N(); v++ {
		if ng.InDegree(v) != 2 {
			t.Errorf("vertex %d indegree = %d, want 2", v, ng.InDegree(v))
		}
	}
}

func TestLayeredFullFanin(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	ng := mustNumber(t, Layered(3, 3, 10, rng)) // fanin >= width → complete bipartite layers
	for v := 4; v <= 9; v++ {
		if ng.InDegree(v) != 3 {
			t.Errorf("vertex %d indegree = %d, want 3", v, ng.InDegree(v))
		}
	}
}

func TestRandomConnectedSingleSource(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 10; trial++ {
		ng := mustNumber(t, RandomConnected(30, 0.1, rng))
		if ng.Sources() != 1 {
			t.Errorf("RandomConnected sources = %d, want 1", ng.Sources())
		}
	}
}

func TestCheckIndexingErrors(t *testing.T) {
	g := Chain(3)
	if err := g.CheckIndexing([]int{1, 2}); err == nil {
		t.Error("short permutation accepted")
	}
	if err := g.CheckIndexing([]int{1, 2, 5}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := g.CheckIndexing([]int{1, 1, 2}); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := g.CheckIndexing([]int{3, 2, 1}); err == nil {
		t.Error("anti-topological permutation accepted")
	}
	if err := g.CheckIndexing([]int{1, 2, 3}); err != nil {
		t.Errorf("valid chain numbering rejected: %v", err)
	}
}

func TestDOTOutput(t *testing.T) {
	ng := mustNumber(t, Diamond())
	dot := ng.DOT("diamond")
	for _, want := range []string{"digraph", "n1 -> n2", "shape=box", "shape=doublecircle"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestSummary(t *testing.T) {
	ng := mustNumber(t, Diamond())
	if got := ng.Summary(); got != "N=4 E=4 sources=1 depth=3" {
		t.Errorf("Summary = %q", got)
	}
}

// property: for every generated random DAG, the constructed numbering
// passes independent validation (topological + S-prefix + m properties).
func TestNumberingPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(60)
		p := rng.Float64() * 0.3
		g := Random(n, p, rng)
		ng := mustNumber(t, g)
		if err := ValidateNumbering(ng); err != nil {
			t.Fatalf("trial %d (n=%d p=%.2f): %v", trial, n, p, err)
		}
	}
}

// property: quick.Check over seeds — m is monotone, v < m(v) for v < N,
// m(N) = N, and the source count equals m(0).
func TestMPropertiesQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := 1 + int(nRaw%50)
		p := float64(pRaw%100) / 150.0
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		ng, err := Random(n, p, rng).Number()
		if err != nil {
			return false
		}
		if ng.M(n) != n {
			return false
		}
		src := 0
		for v := 1; v <= n; v++ {
			if ng.InDegree(v) == 0 {
				src++
			}
			if ng.M(v-1) > ng.M(v) {
				return false
			}
			if v < n && v >= ng.M(v) {
				return false
			}
		}
		return src == ng.M(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// property: numbering round-trips construction IDs.
func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	g := Random(40, 0.15, rng)
	ng := mustNumber(t, g)
	for id := 0; id < g.Len(); id++ {
		if ng.IDOf(ng.IndexOf(id)) != id {
			t.Fatalf("round trip failed for id %d", id)
		}
	}
	for v := 1; v <= ng.N(); v++ {
		if ng.IndexOf(ng.IDOf(v)) != v {
			t.Fatalf("round trip failed for index %d", v)
		}
	}
}

// property: predecessor/successor lists are mutually consistent and
// ports are dense 0..indeg-1.
func TestAdjacencyConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	ng := mustNumber(t, Random(50, 0.1, rng))
	for v := 1; v <= ng.N(); v++ {
		for _, s := range ng.Succ(v) {
			found := false
			for _, p := range ng.Pred(s) {
				if p == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) missing from pred list", v, s)
			}
		}
		seen := make(map[int]bool)
		for _, u := range ng.Pred(v) {
			port := ng.PortOf(u, v)
			if port < 0 || port >= ng.InDegree(v) || seen[port] {
				t.Fatalf("bad port %d for edge (%d,%d)", port, u, v)
			}
			seen[port] = true
		}
	}
}
