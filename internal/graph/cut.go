package graph

import "fmt"

// This file provides the partition metadata used by the pipeline
// partitioner in internal/distrib: helpers over "starts" vectors — the
// contiguous stage boundaries of a pipeline partition — and per-vertex
// cost estimates.
//
// A partition of a numbered graph into k stages is described by the
// ascending vector of 1-based inclusive start indices, starts[0] == 1:
// stage i owns vertices starts[i] .. starts[i+1]-1 (the last stage owns
// through N). Because the numbering is topological, contiguous stages
// make every cut edge point from a lower stage to a higher one, so the
// stage-level graph is itself a pipeline.

// ValidateStarts checks that starts describes a partition of 1..n into
// non-empty contiguous stages: ascending, starts[0] == 1, and every
// start within 1..n.
func ValidateStarts(n int, starts []int) error {
	if len(starts) == 0 {
		return fmt.Errorf("graph: empty partition")
	}
	if starts[0] != 1 {
		return fmt.Errorf("graph: partition starts at %d, want 1", starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			return fmt.Errorf("graph: partition starts not strictly ascending at %d: %v", i, starts)
		}
	}
	if last := starts[len(starts)-1]; last > n {
		return fmt.Errorf("graph: partition start %d beyond %d vertices", last, n)
	}
	return nil
}

// PartitionOf returns the stage owning vertex v under the given starts
// vector (0-based stage index). v must be in 1..N and starts valid.
func PartitionOf(starts []int, v int) int {
	// Stages are few (machine counts), so a linear scan beats binary
	// search overhead in practice and keeps the helper allocation-free.
	m := 0
	for m+1 < len(starts) && v >= starts[m+1] {
		m++
	}
	return m
}

// CutEdges counts the edges of ng whose endpoints fall in different
// stages of the partition — each becomes one cross-machine link message
// route under pipeline partitioning.
func CutEdges(ng *Numbered, starts []int) int {
	cut := 0
	for v := 1; v <= ng.N(); v++ {
		mv := PartitionOf(starts, v)
		for _, w := range ng.Succ(v) {
			if PartitionOf(starts, w) != mv {
				cut++
			}
		}
	}
	return cut
}

// UniformCosts returns a cost vector assigning every vertex unit work —
// the default estimate when nothing better is known.
func UniformCosts(n int) []float64 {
	c := make([]float64, n)
	for i := range c {
		c[i] = 1
	}
	return c
}

// StageLoads sums the per-vertex costs of each stage; costs[v-1] is the
// estimated work of vertex v and defines N (= len(costs)).
func StageLoads(starts []int, costs []float64) []float64 {
	loads := make([]float64, len(starts))
	for v := 1; v <= len(costs); v++ {
		loads[PartitionOf(starts, v)] += costs[v-1]
	}
	return loads
}
