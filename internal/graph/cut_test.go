package graph

import (
	"math/rand/v2"
	"testing"
)

func TestValidateStarts(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		starts []int
		ok     bool
	}{
		{"single stage", 5, []int{1}, true},
		{"even split", 10, []int{1, 5, 8}, true},
		{"all singleton", 3, []int{1, 2, 3}, true},
		{"empty", 5, nil, false},
		{"not starting at 1", 5, []int{2, 4}, false},
		{"not ascending", 5, []int{1, 3, 3}, false},
		{"descending", 5, []int{1, 4, 2}, false},
		{"start beyond n", 5, []int{1, 6}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateStarts(c.n, c.starts)
			if (err == nil) != c.ok {
				t.Errorf("ValidateStarts(%d, %v) = %v, want ok=%v", c.n, c.starts, err, c.ok)
			}
		})
	}
}

func TestPartitionOf(t *testing.T) {
	starts := []int{1, 5, 8}
	cases := map[int]int{1: 0, 4: 0, 5: 1, 7: 1, 8: 2, 10: 2}
	for v, m := range cases {
		if got := PartitionOf(starts, v); got != m {
			t.Errorf("PartitionOf(%d) = %d, want %d", v, got, m)
		}
	}
}

func TestCutEdgesChain(t *testing.T) {
	ng, err := Chain(9).Number()
	if err != nil {
		t.Fatal(err)
	}
	// A chain cut into k stages severs exactly k-1 edges.
	for _, starts := range [][]int{{1}, {1, 4}, {1, 4, 7}, {1, 2, 3, 4, 5, 6, 7, 8, 9}} {
		want := len(starts) - 1
		if got := CutEdges(ng, starts); got != want {
			t.Errorf("CutEdges(chain, %v) = %d, want %d", starts, got, want)
		}
	}
}

// TestCutEdgesMatchesDefinition cross-checks the helper against a direct
// per-edge evaluation on random DAGs.
func TestCutEdgesMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 20; trial++ {
		ng, err := RandomConnected(30, 0.15, rng).Number()
		if err != nil {
			t.Fatal(err)
		}
		starts := []int{1}
		for v := 2; v <= ng.N(); v++ {
			if rng.Float64() < 0.2 {
				starts = append(starts, v)
			}
		}
		want := 0
		for v := 1; v <= ng.N(); v++ {
			for _, w := range ng.Succ(v) {
				if PartitionOf(starts, v) != PartitionOf(starts, w) {
					want++
				}
			}
		}
		if got := CutEdges(ng, starts); got != want {
			t.Fatalf("trial %d: CutEdges = %d, direct count = %d (starts %v)", trial, got, want, starts)
		}
	}
}

func TestStageLoads(t *testing.T) {
	costs := []float64{1, 2, 3, 4, 5}
	loads := StageLoads([]int{1, 3}, costs)
	if len(loads) != 2 || loads[0] != 3 || loads[1] != 12 {
		t.Errorf("StageLoads = %v, want [3 12]", loads)
	}
	uni := UniformCosts(4)
	loads = StageLoads([]int{1, 2, 4}, uni)
	if loads[0] != 1 || loads[1] != 2 || loads[2] != 1 {
		t.Errorf("uniform StageLoads = %v", loads)
	}
}
