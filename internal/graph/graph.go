// Package graph provides the computation-graph substrate of the event
// correlation engine: directed acyclic graphs of computational modules,
// the restricted topological numbering of §3.1.1 of the paper, the m(v)
// prefix function used for readiness detection, validation utilities and
// random-graph generators for tests and benchmarks.
//
// Vertices in a numbered graph are identified by integer indices 1..N
// exactly as in the paper; index 0 is reserved (m(0) is the number of
// source vertices).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a mutable directed graph under construction. Vertices are
// created by AddVertex and referenced by the opaque IDs it returns; edges
// are added by AddEdge. Call Number to freeze the graph into a Numbered
// graph satisfying the paper's indexing restriction.
type Graph struct {
	names []string
	succ  [][]int // successor vertex IDs, 0-based
	pred  [][]int // predecessor vertex IDs, 0-based
	edges int
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddVertex adds a vertex with the given display name and returns its
// 0-based construction ID. Names need not be unique but unique names make
// traces and DOT output much easier to read.
func (g *Graph) AddVertex(name string) int {
	g.names = append(g.names, name)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return len(g.names) - 1
}

// AddVertices adds n anonymous vertices named v0..v(n-1) starting at the
// current size, returning the ID of the first.
func (g *Graph) AddVertices(n int) int {
	first := len(g.names)
	for i := 0; i < n; i++ {
		g.AddVertex(fmt.Sprintf("v%d", first+i))
	}
	return first
}

// AddEdge adds a directed edge from construction ID u to construction ID
// w. Duplicate edges are rejected: the engine treats each edge as one
// input port and duplicating it would double-deliver messages.
func (g *Graph) AddEdge(u, w int) error {
	if u < 0 || u >= len(g.names) || w < 0 || w >= len(g.names) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, w, len(g.names))
	}
	if u == w {
		return fmt.Errorf("graph: self-loop on vertex %d (%s)", u, g.names[u])
	}
	for _, s := range g.succ[u] {
		if s == w {
			return fmt.Errorf("graph: duplicate edge (%d,%d)", u, w)
		}
	}
	g.succ[u] = append(g.succ[u], w)
	g.pred[w] = append(g.pred[w], u)
	g.edges++
	return nil
}

// MustEdge is AddEdge that panics on error; intended for tests and
// hand-built example graphs where edges are statically known to be valid.
func (g *Graph) MustEdge(u, w int) {
	if err := g.AddEdge(u, w); err != nil {
		panic(err)
	}
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.names) }

// Edges returns the number of edges.
func (g *Graph) Edges() int { return g.edges }

// Name returns the display name of construction ID id.
func (g *Graph) Name(id int) string { return g.names[id] }

// Numbered is an immutable computation graph whose vertices carry indices
// 1..N that are topologically sorted and satisfy the paper's additional
// restriction: for every v, S(v) — the set of vertices all of whose
// predecessors are indexed ≤ v — equals the prefix {1, ..., m(v)}.
type Numbered struct {
	n     int
	names []string // names[v-1] is the display name of vertex v
	succ  [][]int  // succ[v-1] lists successor indices of vertex v, ascending
	pred  [][]int  // pred[v-1] lists predecessor indices of vertex v, ascending
	// inPort[v-1][u] is the input-port index at v on which messages from
	// predecessor u arrive; ports are 0..len(pred)-1 in ascending
	// predecessor order.
	inPort []map[int]int
	m      []int // m[v] for v in 0..N (m[0] = number of sources)
	id2idx []int // construction ID -> index
	idx2id []int // index -> construction ID
	edges  int
}

// N returns the number of vertices.
func (ng *Numbered) N() int { return ng.n }

// Edges returns the number of edges.
func (ng *Numbered) Edges() int { return ng.edges }

// M returns m(v), the size of S(v): when all vertices indexed ≤ v have
// finished a phase, all vertices indexed ≤ m(v) have sufficient
// information to execute that phase. Valid for 0 ≤ v ≤ N.
func (ng *Numbered) M(v int) int { return ng.m[v] }

// Sources returns the number of source vertices; sources are exactly the
// vertices indexed 1..Sources().
func (ng *Numbered) Sources() int { return ng.m[0] }

// IsSource reports whether vertex v has no input edges.
func (ng *Numbered) IsSource(v int) bool { return v >= 1 && v <= ng.m[0] }

// IsSink reports whether vertex v has no output edges.
func (ng *Numbered) IsSink(v int) bool { return len(ng.succ[v-1]) == 0 }

// Succ returns the successor indices of vertex v in ascending order. The
// returned slice is shared and must not be mutated.
func (ng *Numbered) Succ(v int) []int { return ng.succ[v-1] }

// Pred returns the predecessor indices of vertex v in ascending order.
// The returned slice is shared and must not be mutated.
func (ng *Numbered) Pred(v int) []int { return ng.pred[v-1] }

// InDegree returns the number of input ports of vertex v.
func (ng *Numbered) InDegree(v int) int { return len(ng.pred[v-1]) }

// OutDegree returns the number of output edges of vertex v.
func (ng *Numbered) OutDegree(v int) int { return len(ng.succ[v-1]) }

// PortOf returns the input-port index at vertex w on which messages from
// predecessor u arrive. It panics if (u,w) is not an edge.
func (ng *Numbered) PortOf(u, w int) int {
	p, ok := ng.inPort[w-1][u]
	if !ok {
		panic(fmt.Sprintf("graph: no edge (%d,%d)", u, w))
	}
	return p
}

// Name returns the display name of vertex v (1-based index).
func (ng *Numbered) Name(v int) string { return ng.names[v-1] }

// IndexOf returns the 1-based index assigned to construction ID id.
func (ng *Numbered) IndexOf(id int) int { return ng.id2idx[id] }

// IDOf returns the construction ID of the vertex with 1-based index v.
func (ng *Numbered) IDOf(v int) int { return ng.idx2id[v] }

// Depth returns the length of the longest path in the graph measured in
// vertices (a single vertex has depth 1). This is the minimum number of
// sequential steps a phase needs from sources to sinks, and bounds the
// pipeline depth observable in Figure 1-style experiments.
func (ng *Numbered) Depth() int {
	depth := make([]int, ng.n+1)
	max := 0
	for v := 1; v <= ng.n; v++ {
		d := 1
		for _, u := range ng.pred[v-1] {
			if depth[u]+1 > d {
				d = depth[u] + 1
			}
		}
		depth[v] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Levels returns, for each vertex index 1..N, its level: sources are level
// 0 and every other vertex is one more than its deepest predecessor. Used
// by the barrier baseline executor.
func (ng *Numbered) Levels() []int {
	lv := make([]int, ng.n+1)
	for v := 1; v <= ng.n; v++ {
		l := 0
		for _, u := range ng.pred[v-1] {
			if lv[u]+1 > l {
				l = lv[u] + 1
			}
		}
		lv[v] = l
	}
	return lv[1:]
}

// Number freezes g into a Numbered graph, producing an indexing that is
// topologically sorted and satisfies the S-prefix restriction of §3.1.1.
//
// A numbering satisfies the restriction iff vertices appear in
// non-decreasing order of "ready time" — the index assigned to the last of
// their predecessors to be numbered (0 for sources). Kahn's algorithm with
// a FIFO queue assigns indices in exactly that order: when the vertex
// receiving index v is the last predecessor of w, w is appended to the
// queue, and every vertex appended later has ready time ≥ v. The
// construction is O(V + E) and fails only if the graph has a cycle.
func (g *Graph) Number() (*Numbered, error) {
	n := len(g.names)
	indeg := make([]int, n)
	for id := 0; id < n; id++ {
		indeg[id] = len(g.pred[id])
	}
	// FIFO queue of construction IDs whose predecessors are all numbered.
	// Seed with sources in ID order for determinism.
	queue := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	id2idx := make([]int, n)
	idx2id := make([]int, n+1)
	next := 1
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		id2idx[id] = next
		idx2id[next] = id
		next++
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if next != n+1 {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d vertices numbered)", next-1, n)
	}

	ng := &Numbered{
		n:      n,
		names:  make([]string, n),
		succ:   make([][]int, n),
		pred:   make([][]int, n),
		inPort: make([]map[int]int, n),
		id2idx: id2idx,
		idx2id: idx2id,
		edges:  g.edges,
	}
	for v := 1; v <= n; v++ {
		id := idx2id[v]
		ng.names[v-1] = g.names[id]
		for _, s := range g.succ[id] {
			ng.succ[v-1] = append(ng.succ[v-1], id2idx[s])
		}
		for _, p := range g.pred[id] {
			ng.pred[v-1] = append(ng.pred[v-1], id2idx[p])
		}
		sort.Ints(ng.succ[v-1])
		sort.Ints(ng.pred[v-1])
		ports := make(map[int]int, len(ng.pred[v-1]))
		for i, u := range ng.pred[v-1] {
			ports[u] = i
		}
		ng.inPort[v-1] = ports
	}
	ng.m = computeM(ng)
	if err := ValidateNumbering(ng); err != nil {
		// Should be impossible by construction; fail loudly if the
		// invariant is ever broken rather than corrupting executions.
		return nil, fmt.Errorf("graph: internal error: constructed numbering invalid: %w", err)
	}
	return ng, nil
}

// computeM derives m(v) = |S(v)| for 0 ≤ v ≤ N from the numbered graph.
// lastPred(w) is the maximum predecessor index of w (0 for sources);
// S(v) = {w : lastPred(w) ≤ v}, so m(v) counts vertices whose lastPred is
// ≤ v. With a restriction-satisfying numbering this is a prefix count.
func computeM(ng *Numbered) []int {
	n := ng.n
	// histogram of lastPred values
	counts := make([]int, n+1)
	for w := 1; w <= n; w++ {
		lp := 0
		for _, u := range ng.pred[w-1] {
			if u > lp {
				lp = u
			}
		}
		counts[lp]++
	}
	m := make([]int, n+1)
	running := 0
	for v := 0; v <= n; v++ {
		running += counts[v]
		m[v] = running
	}
	return m
}

// ValidateNumbering checks that a Numbered graph's indexing is
// topologically sorted and that every S(v) is the prefix {1..m(v)} — the
// two conditions of §3.1.1 — and that the m values satisfy properties
// (2)-(4) of the paper. It returns nil when all hold.
func ValidateNumbering(ng *Numbered) error {
	n := ng.n
	// Topological order: every edge goes from lower to higher index.
	for v := 1; v <= n; v++ {
		for _, s := range ng.succ[v-1] {
			if s <= v {
				return fmt.Errorf("edge (%d,%d) not topologically sorted", v, s)
			}
		}
	}
	// S-prefix restriction, checked against a direct evaluation of the
	// definition S(v) = {w | all preds of w are ≤ v}.
	lastPred := make([]int, n+1)
	for w := 1; w <= n; w++ {
		for _, u := range ng.pred[w-1] {
			if u > lastPred[w] {
				lastPred[w] = u
			}
		}
	}
	for v := 0; v <= n; v++ {
		size := 0
		prefix := true
		for w := 1; w <= n; w++ {
			if lastPred[w] <= v {
				size++
				if size != w {
					prefix = false
				}
			}
		}
		if !prefix {
			return fmt.Errorf("S(%d) is not a prefix", v)
		}
		if size != ng.m[v] {
			return fmt.Errorf("m(%d) = %d but |S(%d)| = %d", v, ng.m[v], v, size)
		}
	}
	// Properties (2)-(4).
	for v := 1; v <= n; v++ {
		if ng.m[v-1] > ng.m[v] {
			return fmt.Errorf("m not monotone at %d: m(%d)=%d > m(%d)=%d", v, v-1, ng.m[v-1], v, ng.m[v])
		}
	}
	for v := 1; v < n; v++ {
		if v >= ng.m[v] {
			return fmt.Errorf("property (3) violated: m(%d) = %d ≤ %d", v, ng.m[v], v)
		}
	}
	if n > 0 && ng.m[n] != n {
		return fmt.Errorf("property (4) violated: m(N) = %d, want %d", ng.m[n], n)
	}
	return nil
}

// CheckIndexing verifies an externally supplied numbering (a permutation
// perm where perm[id] is the 1-based index of construction ID id) against
// the paper's two conditions, without rebuilding the graph. It is used to
// test numberings that are expected to fail, such as Figure 2(a).
func (g *Graph) CheckIndexing(perm []int) error {
	n := len(g.names)
	if len(perm) != n {
		return fmt.Errorf("graph: permutation has %d entries, want %d", len(perm), n)
	}
	seen := make([]bool, n+1)
	for id, v := range perm {
		if v < 1 || v > n {
			return fmt.Errorf("graph: index %d for vertex %d out of range", v, id)
		}
		if seen[v] {
			return fmt.Errorf("graph: index %d assigned twice", v)
		}
		seen[v] = true
	}
	// Topological order.
	for id := 0; id < n; id++ {
		for _, s := range g.succ[id] {
			if perm[s] <= perm[id] {
				return fmt.Errorf("edge (%d,%d) not topologically sorted under permutation", perm[id], perm[s])
			}
		}
	}
	// S-prefix restriction via lastPred.
	lastPred := make([]int, n+1)
	for id := 0; id < n; id++ {
		w := perm[id]
		for _, p := range g.pred[id] {
			if perm[p] > lastPred[w] {
				lastPred[w] = perm[p]
			}
		}
	}
	for v := 0; v <= n; v++ {
		size := 0
		for w := 1; w <= n; w++ {
			if lastPred[w] <= v {
				size++
				if size != w {
					return fmt.Errorf("S(%d) is not a prefix under permutation", v)
				}
			}
		}
	}
	return nil
}

// MSequence returns the sequence [m(0), m(1), ..., m(N)]; Figure 2(b) of
// the paper lists this sequence for its example graph.
func (ng *Numbered) MSequence() []int {
	out := make([]int, len(ng.m))
	copy(out, ng.m)
	return out
}
