package graph

import (
	"fmt"
	"strings"
)

// DOT renders the numbered graph in Graphviz dot syntax, one vertex per
// index with its display name, sources drawn as boxes and sinks as double
// circles. Useful for debugging example topologies; no Graphviz binary is
// required to produce the text.
func (ng *Numbered) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n")
	for v := 1; v <= ng.n; v++ {
		shape := "ellipse"
		if ng.IsSource(v) {
			shape = "box"
		} else if ng.IsSink(v) {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%d: %s\" shape=%s];\n", v, v, ng.Name(v), shape)
	}
	for v := 1; v <= ng.n; v++ {
		for _, s := range ng.succ[v-1] {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", v, s)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary returns a one-line description of the numbered graph's shape,
// used in experiment table headers.
func (ng *Numbered) Summary() string {
	return fmt.Sprintf("N=%d E=%d sources=%d depth=%d", ng.n, ng.edges, ng.Sources(), ng.Depth())
}
