package evlog

import (
	"bytes"
	"compress/gzip"
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: KindEpochLaunch, Machine: -1, Epoch: 0, Phase: 0, A: 0, Data: AppendInts(nil, []int{1, 4})},
		{Kind: KindPhaseStart, Machine: 0, Epoch: 0, Phase: 1},
		{Kind: KindFeed, Machine: 0, Epoch: 0, Phase: 1, A: 3, Hash: 0xDEADBEEF},
		{Kind: KindExec, Machine: 0, Epoch: 0, Phase: 1, A: 2},
		{Kind: KindFrameSend, Machine: 0, Epoch: 0, Phase: 1, A: 0, B: 1, B2: 0, Hash: 42},
		{Kind: KindFrameRecv, Machine: 1, Epoch: 0, Phase: 1, A: 0, B: 1, B2: 0, Hash: 42},
		{Kind: KindPhaseCommit, Machine: 0, Epoch: 0, Phase: 1},
		{Kind: KindWireOut, Machine: 0, Epoch: 0, Phase: 1, A: 0, B: 1, Hash: 17},
		{Kind: KindRecovery, Machine: -1, Epoch: 2, A: 1, B: 3, Data: AppendInts(nil, []int{1})},
	}
}

func TestLogRoundTrip(t *testing.T) {
	info := RunInfo{Workload: "chain5/machines=2/phases=100", Machines: 2, Phases: 100, Transport: "chan", Note: "seed 7"}
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteLog(&buf, info, events); err != nil {
		t.Fatal(err)
	}
	got, gotEvents, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, info) {
		t.Errorf("header round-trip: got %+v, want %+v", got, info)
	}
	if !reflect.DeepEqual(gotEvents, events) {
		t.Errorf("events round-trip: got %+v, want %+v", gotEvents, events)
	}
}

func TestLogDeterministicBytes(t *testing.T) {
	info := RunInfo{Workload: "w", Machines: 2, Phases: 10}
	events := sampleEvents()
	var a, b bytes.Buffer
	if err := WriteLog(&a, info, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteLog(&b, info, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two writes of the same log differ byte-wise")
	}
}

// rawLog builds an uncompressed log image, for damage injection before
// the gzip layer is applied.
func rawLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteLog(&buf, RunInfo{Workload: "w", Machines: 1, Phases: 1}, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(zr); err != nil {
		t.Fatal(err)
	}
	return raw.Bytes()
}

// gz re-compresses a (possibly damaged) raw log image.
func gz(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadLogDamage(t *testing.T) {
	whole := rawLog(t)
	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		wantErr error
	}{
		{"not gzip", nil, ErrCorrupt},
		{"empty stream", func(raw []byte) []byte { return nil }, ErrTruncated},
		{"bad magic", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[0] ^= 0xFF
			return out
		}, ErrCorrupt},
		{"unknown version", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[4] = 99
			return out
		}, ErrCorrupt},
		{"header cut short", func(raw []byte) []byte { return raw[:7] }, ErrTruncated},
		{"cut mid-record", func(raw []byte) []byte { return raw[:len(raw)-3] }, ErrTruncated},
		{"record length cut", func(raw []byte) []byte { return raw[:len(raw)-25] }, ErrTruncated},
		{"zero record length", func(raw []byte) []byte {
			return append(append([]byte(nil), raw...), 0)
		}, ErrCorrupt},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var data []byte
			if c.mangle == nil {
				data = []byte("definitely not a gzip stream")
			} else {
				data = gz(t, c.mangle(whole))
			}
			_, _, err := ReadLog(bytes.NewReader(data))
			if !errors.Is(err, c.wantErr) {
				t.Fatalf("got error %v, want %v", err, c.wantErr)
			}
		})
	}
}

// A log cut mid-stream still yields the events decoded before the cut.
func TestReadLogTruncatedKeepsPrefix(t *testing.T) {
	whole := rawLog(t)
	_, all, err := ReadLog(bytes.NewReader(gz(t, whole)))
	if err != nil {
		t.Fatal(err)
	}
	_, some, err := ReadLog(bytes.NewReader(gz(t, whole[:len(whole)-3])))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("got error %v, want ErrTruncated", err)
	}
	if len(some) != len(all)-1 {
		t.Fatalf("decoded %d events before the cut, want %d", len(some), len(all)-1)
	}
	if !reflect.DeepEqual(some, all[:len(some)]) {
		t.Error("decoded prefix differs from the intact log's prefix")
	}
}

func TestMergeDeterministicAcrossOrder(t *testing.T) {
	events := sampleEvents()
	// Spread events over buckets and shuffle within each; the merged
	// stream must not care.
	split := func(seed uint64) [][]Event {
		rng := rand.New(rand.NewPCG(seed, seed^1))
		buckets := make([][]Event, 3)
		for _, e := range events {
			b := rng.IntN(3)
			buckets[b] = append(buckets[b], e)
		}
		for _, b := range buckets {
			rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		}
		return buckets
	}
	ref := Merge(split(1)...)
	for _, e := range ref {
		if !Deterministic(e.Kind) {
			t.Fatalf("auxiliary event kind %d survived Merge", e.Kind)
		}
	}
	for seed := uint64(2); seed < 12; seed++ {
		got := Merge(split(seed)...)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("merge of shuffle %d differs from reference", seed)
		}
	}
}

func TestRecorderBuckets(t *testing.T) {
	r := NewRecorder()
	r.Event(Event{Kind: KindPhaseStart, Machine: 1, Phase: 1})
	r.Event(Event{Kind: KindEpochLaunch, Machine: -1, Data: AppendInts(nil, []int{1})})
	r.Event(Event{Kind: KindPhaseStart, Machine: 0, Phase: 1})
	if got := r.Machines(); !reflect.DeepEqual(got, []int{-1, 0, 1}) {
		t.Errorf("Machines() = %v, want [-1 0 1]", got)
	}
	if n := len(r.Events(1)); n != 1 {
		t.Errorf("machine 1 bucket holds %d events, want 1", n)
	}
	if n := len(r.Merged()); n != 3 {
		t.Errorf("merged stream holds %d events, want 3", n)
	}
}

func TestIntsRoundTrip(t *testing.T) {
	for _, xs := range [][]int{nil, {}, {0}, {1, 4, 9}, {-3, 1 << 30, -(1 << 40)}} {
		got, err := ReadInts(AppendInts(nil, xs))
		if err != nil {
			t.Fatalf("ReadInts(%v): %v", xs, err)
		}
		if len(got) != len(xs) {
			t.Fatalf("round-trip of %v gave %v", xs, got)
		}
		for i := range xs {
			if got[i] != xs[i] {
				t.Fatalf("round-trip of %v gave %v", xs, got)
			}
		}
	}
	if _, err := ReadInts([]byte{5, 1}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short int list: got %v, want ErrCorrupt", err)
	}
	if _, err := ReadInts(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty int list buffer: got %v, want ErrCorrupt", err)
	}
}
