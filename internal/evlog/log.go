package evlog

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// logMagic opens every event log, inside the gzip stream.
const logMagic = "EVL1"

// logVersion is the current record-format version.
const logVersion = 1

// maxRecord bounds one encoded event record; a length prefix past it
// is treated as corruption, mirroring netwire's hostile-length rule.
const maxRecord = 1 << 20

// ErrCorrupt reports structural damage in an event log: a bad magic,
// an unknown version, a hostile length prefix or a malformed record.
var ErrCorrupt = errors.New("evlog: corrupt event log")

// ErrTruncated reports an event log that ends mid-record — the gzip
// stream or the file under it was cut short.
var ErrTruncated = errors.New("evlog: truncated event log")

// RunInfo is the log header: enough provenance to refuse replaying a
// log against the wrong workload and to reconstruct the live run's
// fault configuration. Fault holds the JSON form of the run's
// distrib.FaultPlan (evlog cannot import distrib); empty means a
// fault-free run.
type RunInfo struct {
	// Workload is the caller-defined workload signature, in the WAL
	// style: name/machines=M/phases=P.
	Workload string `json:"workload"`
	// Machines is the deployment width.
	Machines int `json:"machines"`
	// Phases is the total run length.
	Phases int `json:"phases"`
	// Transport names the live run's Network ("chan", "tcp", ...).
	Transport string `json:"transport,omitempty"`
	// Fault is the serialized distrib.FaultPlan of a fault-injected
	// run; a sweep point reproduces from this field alone.
	Fault json.RawMessage `json:"fault,omitempty"`
	// Note is free-form provenance (sweep seed, mode).
	Note string `json:"note,omitempty"`
}

// WriteLog writes a gzipped, length-prefixed event log: header
// (magic, version, JSON RunInfo) then one record per event.
func WriteLog(w io.Writer, info RunInfo, events []Event) error {
	zw := gzip.NewWriter(w)
	bw := bufio.NewWriter(zw)
	var buf []byte
	buf = append(buf, logMagic...)
	buf = binary.AppendUvarint(buf, logVersion)
	hdr, err := json.Marshal(info)
	if err != nil {
		return fmt.Errorf("evlog: encoding header: %w", err)
	}
	buf = binary.AppendUvarint(buf, uint64(len(hdr)))
	buf = append(buf, hdr...)
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, e := range events {
		buf = appendEvent(buf[:0], e)
		var pre [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(pre[:], uint64(len(buf)))
		if _, err := bw.Write(pre[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return zw.Close()
}

// ReadLog decodes a log written by WriteLog. A log cut mid-record
// returns ErrTruncated; structural damage returns ErrCorrupt. Either
// way the events decoded before the damage are returned.
func ReadLog(r io.Reader) (RunInfo, []Event, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return RunInfo{}, nil, fmt.Errorf("%w: not a gzip stream: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	br := bufio.NewReader(zr)
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return RunInfo{}, nil, fmt.Errorf("%w: missing magic", ErrTruncated)
	}
	if string(magic) != logMagic {
		return RunInfo{}, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return RunInfo{}, nil, fmt.Errorf("%w: missing version", ErrTruncated)
	}
	if ver != logVersion {
		return RunInfo{}, nil, fmt.Errorf("%w: unknown version %d", ErrCorrupt, ver)
	}
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return RunInfo{}, nil, fmt.Errorf("%w: missing header length", ErrTruncated)
	}
	if hlen > maxRecord {
		return RunInfo{}, nil, fmt.Errorf("%w: header length %d", ErrCorrupt, hlen)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return RunInfo{}, nil, fmt.Errorf("%w: header cut short", ErrTruncated)
	}
	var info RunInfo
	if err := json.Unmarshal(hdr, &info); err != nil {
		return RunInfo{}, nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	var events []Event
	for {
		rlen, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return info, events, nil
		}
		if err != nil {
			return info, events, fmt.Errorf("%w: record length cut short", ErrTruncated)
		}
		if rlen == 0 || rlen > maxRecord {
			return info, events, fmt.Errorf("%w: record length %d", ErrCorrupt, rlen)
		}
		rec := make([]byte, rlen)
		if _, err := io.ReadFull(br, rec); err != nil {
			return info, events, fmt.Errorf("%w: record cut short", ErrTruncated)
		}
		e, rest, err := decodeEvent(rec)
		if err != nil {
			return info, events, err
		}
		if len(rest) != 0 {
			return info, events, fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupt, len(rest))
		}
		events = append(events, e)
	}
}

// appendEvent appends the record encoding of e to buf.
func appendEvent(buf []byte, e Event) []byte {
	buf = append(buf, byte(e.Kind))
	buf = binary.AppendVarint(buf, int64(e.Machine))
	buf = binary.AppendUvarint(buf, uint64(e.Epoch))
	buf = binary.AppendUvarint(buf, uint64(e.Phase))
	buf = binary.AppendVarint(buf, int64(e.A))
	buf = binary.AppendVarint(buf, int64(e.B))
	buf = append(buf, e.B2)
	buf = binary.AppendUvarint(buf, e.Hash)
	buf = binary.AppendUvarint(buf, uint64(len(e.Data)))
	return append(buf, e.Data...)
}

// decodeEvent decodes one record, returning the remaining bytes.
func decodeEvent(buf []byte) (Event, []byte, error) {
	var e Event
	if len(buf) < 1 {
		return e, nil, fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	e.Kind = Kind(buf[0])
	buf = buf[1:]
	rd := func() (int64, bool) {
		v, n := binary.Varint(buf)
		if n <= 0 {
			return 0, false
		}
		buf = buf[n:]
		return v, true
	}
	rdU := func() (uint64, bool) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, false
		}
		buf = buf[n:]
		return v, true
	}
	m, ok1 := rd()
	ep, ok2 := rdU()
	ph, ok3 := rdU()
	a, ok4 := rd()
	b, ok5 := rd()
	if !(ok1 && ok2 && ok3 && ok4 && ok5) || len(buf) < 1 {
		return e, nil, fmt.Errorf("%w: truncated event fields", ErrCorrupt)
	}
	e.Machine, e.Epoch, e.Phase, e.A, e.B = int(m), int(ep), int(ph), int(a), int(b)
	e.B2 = buf[0]
	buf = buf[1:]
	h, ok6 := rdU()
	dlen, ok7 := rdU()
	if !ok6 || !ok7 || uint64(len(buf)) < dlen {
		return e, nil, fmt.Errorf("%w: truncated event payload", ErrCorrupt)
	}
	e.Hash = h
	if dlen > 0 {
		e.Data = append([]byte(nil), buf[:dlen]...)
	}
	return e, buf[dlen:], nil
}

// AppendInts varint-encodes xs for an Event's Data field (plan starts,
// rejoined machine lists).
func AppendInts(buf []byte, xs []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = binary.AppendVarint(buf, int64(x))
	}
	return buf
}

// ReadInts decodes an AppendInts payload.
func ReadInts(buf []byte) ([]int, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 || n > maxRecord {
		return nil, fmt.Errorf("%w: int list length", ErrCorrupt)
	}
	buf = buf[used:]
	xs := make([]int, n)
	for i := range xs {
		v, used := binary.Varint(buf)
		if used <= 0 {
			return nil, fmt.Errorf("%w: int list cut short", ErrCorrupt)
		}
		xs[i] = int(v)
		buf = buf[used:]
	}
	return xs, nil
}
