package evlog

import (
	"bytes"
	"sort"
)

// Merge folds per-machine event buckets into the canonical stream:
// auxiliary-class events are dropped, the rest sort by the
// deterministic tiebreak order (epoch, phase, kind, machine, A, B,
// B2, hash, payload). The key is total over every event a correct run
// emits — two events equal under it are byte-identical — so the merged
// stream of a fault-free run is independent of capture interleaving,
// transport, and wall-clock: a live TCP run and its in-process replay
// merge to the same bytes.
func Merge(buckets ...[]Event) []Event {
	var out []Event
	for _, b := range buckets {
		for _, e := range b {
			if Deterministic(e.Kind) {
				out = append(out, e)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return less(out[i], out[j])
	})
	return out
}

// less is the canonical event order.
func less(a, b Event) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Machine != b.Machine {
		return a.Machine < b.Machine
	}
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	if a.B2 != b.B2 {
		return a.B2 < b.B2
	}
	if a.Hash != b.Hash {
		return a.Hash < b.Hash
	}
	return bytes.Compare(a.Data, b.Data) < 0
}
