// Package replay re-drives a recorded run from its event log alone
// (DESIGN.md §11). A Player extracts the committed epoch schedule —
// the launch decisions that survived any rollbacks — from a log's
// KindEpochLaunch events and hands it to distrib.RunScripted, which
// re-executes the whole multi-machine run in-process with no live
// network, no timing and no coordinator: every barrier is known up
// front. The replayed run is bit-identical to the recorded one, so a
// failing fault-sweep seed reproduces on a laptop from its log file.
package replay

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/evlog"
	"repro/internal/graph"
)

// Player holds one decoded event log, ready to re-drive.
type Player struct {
	// Info is the log's provenance header.
	Info evlog.RunInfo
	// Events is the log's event stream in stored order.
	Events []evlog.Event
}

// Load decodes an event log written by evlog.WriteLog. Damage surfaces
// as evlog.ErrTruncated or evlog.ErrCorrupt.
func Load(r io.Reader) (*Player, error) {
	info, events, err := evlog.ReadLog(r)
	if err != nil {
		return nil, err
	}
	return &Player{Info: info, Events: events}, nil
}

// NewPlayer wraps an in-memory event stream (e.g. a Recorder's merged
// view) without the log round-trip.
func NewPlayer(info evlog.RunInfo, events []evlog.Event) *Player {
	return &Player{Info: info, Events: events}
}

// CheckWorkload refuses to replay a log recorded against a different
// workload: the caller states the signature of the graph, modules and
// batches it is about to supply, and the header must agree.
func (p *Player) CheckWorkload(workload string, machines, phases int) error {
	if p.Info.Workload != workload {
		return fmt.Errorf("replay: log records workload %q, caller supplies %q", p.Info.Workload, workload)
	}
	if p.Info.Machines != machines || p.Info.Phases != phases {
		return fmt.Errorf("replay: log records machines=%d phases=%d, caller supplies machines=%d phases=%d",
			p.Info.Machines, p.Info.Phases, machines, phases)
	}
	return nil
}

// FaultPlan decodes the recorded run's fault configuration; ok is
// false for a fault-free run.
func (p *Player) FaultPlan() (distrib.FaultPlan, bool, error) {
	if len(p.Info.Fault) == 0 {
		return distrib.FaultPlan{}, false, nil
	}
	var fp distrib.FaultPlan
	if err := json.Unmarshal(p.Info.Fault, &fp); err != nil {
		return distrib.FaultPlan{}, false, fmt.Errorf("replay: decoding fault plan: %w", err)
	}
	return fp, true, nil
}

// Schedule extracts the committed epoch schedule from the log's launch
// events. Launches are ordered by (attempt, epoch); a relaunch
// resuming at base b supersedes every already-committed window whose
// base is >= b — those windows were rolled back, their work discarded,
// so the committed run never contains them.
func (p *Player) Schedule() ([]distrib.EpochPlan, error) {
	type launch struct {
		attempt, epoch, base int
		starts               []int
	}
	var launches []launch
	for _, e := range p.Events {
		if e.Kind != evlog.KindEpochLaunch {
			continue
		}
		starts, err := evlog.ReadInts(e.Data)
		if err != nil {
			return nil, fmt.Errorf("replay: launch event for epoch %d: %w", e.Epoch, err)
		}
		launches = append(launches, launch{attempt: e.A, epoch: e.Epoch, base: e.Phase, starts: starts})
	}
	if len(launches) == 0 {
		return nil, errors.New("replay: no epoch launches in log")
	}
	sort.SliceStable(launches, func(i, j int) bool {
		if launches[i].attempt != launches[j].attempt {
			return launches[i].attempt < launches[j].attempt
		}
		return launches[i].epoch < launches[j].epoch
	})
	var sched []distrib.EpochPlan
	for _, l := range launches {
		for len(sched) > 0 && sched[len(sched)-1].Base >= l.base {
			sched = sched[:len(sched)-1]
		}
		sched = append(sched, distrib.EpochPlan{Base: l.base, Starts: l.starts})
	}
	if sched[0].Base != 0 {
		return nil, fmt.Errorf("replay: committed schedule starts at base %d, want 0", sched[0].Base)
	}
	return sched, nil
}

// Replay re-drives the committed schedule over the caller's workload
// (the modules cannot live in the log; the caller rebuilds them
// exactly as the recorded run did). cfg supplies the engine tuning —
// Machines and Planner are irrelevant, the schedule fixes both — and
// cfg.Tap, when set, records the replay for the golden byte-identity
// check.
func (p *Player) Replay(g *graph.Numbered, mods []core.Module, batches [][]core.ExtInput, cfg distrib.Config) (distrib.Stats, error) {
	sched, err := p.Schedule()
	if err != nil {
		return distrib.Stats{}, err
	}
	if len(batches) != p.Info.Phases {
		return distrib.Stats{}, fmt.Errorf("replay: %d batches for a %d-phase log", len(batches), p.Info.Phases)
	}
	return distrib.RunScripted(g, mods, batches, cfg, sched)
}
