package replay_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/event"
	"repro/internal/evlog"
	"repro/internal/evlog/replay"
	"repro/internal/graph"
	"repro/internal/module"
	"repro/internal/netwire"
)

// mix is the splitmix64 finalizer, the tests' stock cheap hash.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// phaseSource emits a pure function of the phase number, with
// Δ-sparsity, and snapshots as empty state so it can migrate.
type phaseSource struct{}

func (phaseSource) Step(ctx *core.Context) {
	h := mix(0xF00D ^ uint64(ctx.Phase()))
	if h%5 == 0 {
		return
	}
	ctx.EmitAll(event.Float(float64(int64(h%1000)) / 7))
}
func (phaseSource) SnapshotState() ([]byte, error) { return nil, nil }
func (phaseSource) RestoreState([]byte) error      { return nil }

// recSink records each incoming value's canonical wire encoding keyed
// by phase — the run history the oracle comparison is made on.
type recSink struct {
	mu  sync.Mutex
	log []string
}

func (s *recSink) Step(ctx *core.Context) {
	if v, ok := ctx.FirstIn(); ok {
		s.mu.Lock()
		s.log = append(s.log, fmt.Sprintf("%d:%x", ctx.Phase(), netwire.AppendValue(nil, v)))
		s.mu.Unlock()
	}
}

func (s *recSink) SnapshotState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []byte(strings.Join(s.log, "\n")), nil
}

func (s *recSink) RestoreState(state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(state) == 0 {
		s.log = nil
		return nil
	}
	s.log = strings.Split(string(state), "\n")
	return nil
}

func (s *recSink) history() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.log...)
}

func buildChain(t *testing.T) (*graph.Numbered, []core.Module, *recSink) {
	t.Helper()
	ng, err := graph.Chain(5).Number()
	if err != nil {
		t.Fatal(err)
	}
	sink := &recSink{}
	mods := []core.Module{
		phaseSource{},
		module.NewSmoother(0.3),
		module.NewMovingAverage(7, 3),
		module.NewZScoreDetector(9, 0.8, 5),
		sink,
	}
	return ng, mods, sink
}

// TestGoldenRoundTrip is the record/replay acceptance test (DESIGN.md
// §11): record a rebalancing run (over in-process channels and over
// real loopback TCP), replay it in-process from the log alone,
// re-record the replay, and require the two log files byte-identical —
// and the replayed sink history bit-identical to the sequential
// oracle.
func TestGoldenRoundTrip(t *testing.T) {
	for _, transport := range []string{"chan", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			testGoldenRoundTrip(t, transport)
		})
	}
}

func testGoldenRoundTrip(t *testing.T, transport string) {
	const machines, phases = 2, 900
	batches := make([][]core.ExtInput, phases)
	workload := fmt.Sprintf("chain5/machines=%d/phases=%d", machines, phases)

	ngRef, modsRef, sinkRef := buildChain(t)
	if _, err := baseline.Sequential(ngRef, modsRef, batches); err != nil {
		t.Fatal(err)
	}
	oracle := sinkRef.history()

	// Record a live coordinated run.
	ng, mods, sink := buildChain(t)
	cfg := distrib.Config{Machines: machines, WorkersPerMachine: 1, MaxInFlight: 8, Buffer: 4}
	if transport == "tcp" {
		net, err := distrib.NewTCPNetwork()
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		cfg.Network = net
	}
	rec := evlog.NewRecorder()
	st, err := distrib.Run(context.Background(),
		distrib.RunConfig{Graph: ng, Mods: mods, Batches: batches, Dist: cfg},
		distrib.WithRebalancing(distrib.RebalanceConfig{ForceEvery: 250, MinRemaining: 20, MaxRebalances: 2}),
		distrib.WithTap(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rebalances) == 0 {
		t.Fatal("recorded run performed no epoch switches; the round-trip would not cover migration")
	}
	if !reflect.DeepEqual(sink.history(), oracle) {
		t.Fatal("recorded run diverges from the sequential oracle")
	}

	info := evlog.RunInfo{Workload: workload, Machines: machines, Phases: phases, Transport: transport}
	var log1 bytes.Buffer
	if err := evlog.WriteLog(&log1, info, rec.Merged()); err != nil {
		t.Fatal(err)
	}

	// Replay from the log alone: no live network, no coordinator.
	p, err := replay.Load(bytes.NewReader(log1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckWorkload(workload, machines, phases); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckWorkload("other", machines, phases); err == nil {
		t.Error("CheckWorkload accepted a mismatched workload signature")
	}
	sched, err := p.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != len(st.Rebalances)+1 {
		t.Errorf("schedule has %d windows for %d recorded switches", len(sched), len(st.Rebalances))
	}

	ng2, mods2, sink2 := buildChain(t)
	rec2 := evlog.NewRecorder()
	if _, err := p.Replay(ng2, mods2, batches, distrib.Config{
		Machines: machines, WorkersPerMachine: 1, MaxInFlight: 8, Buffer: 4, Tap: rec2,
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sink2.history(), oracle) {
		t.Fatal("replayed run diverges from the sequential oracle")
	}

	// Re-record: the merged deterministic streams, and therefore the
	// log files, must be byte-identical.
	var log2 bytes.Buffer
	if err := evlog.WriteLog(&log2, p.Info, rec2.Merged()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(log1.Bytes(), log2.Bytes()) {
		e1, e2 := rec.Merged(), rec2.Merged()
		t.Errorf("re-recorded replay log differs from the original (%d vs %d events)", len(e1), len(e2))
		for i := 0; i < len(e1) && i < len(e2); i++ {
			if !reflect.DeepEqual(e1[i], e2[i]) {
				t.Fatalf("first divergence at event %d:\n live:   %+v\n replay: %+v", i, e1[i], e2[i])
			}
		}
	}
}

// A recovered durable run replays from its committed schedule alone:
// the rolled-back window's launches are superseded and the replayed
// history still matches the oracle.
func TestReplaySupersedesRolledBackWindows(t *testing.T) {
	const machines, phases = 2, 300
	batches := make([][]core.ExtInput, phases)

	ngRef, modsRef, sinkRef := buildChain(t)
	if _, err := baseline.Sequential(ngRef, modsRef, batches); err != nil {
		t.Fatal(err)
	}
	oracle := sinkRef.history()

	ng, mods, _ := buildChain(t)
	rec := evlog.NewRecorder()
	st, err := distrib.Run(context.Background(),
		distrib.RunConfig{Graph: ng, Mods: mods, Batches: batches,
			Dist: distrib.Config{Machines: machines, WorkersPerMachine: 1, MaxInFlight: 8, Buffer: 4}},
		distrib.WithRebalancing(distrib.RebalanceConfig{SkewThreshold: 1e12}),
		distrib.WithFaults(distrib.FaultPlan{Seed: 3, CrashAtPhase: 60, CrashOnce: true}),
		distrib.WithWAL(t.TempDir()),
		distrib.WithRecovery(distrib.RecoverConfig{Window: 10 * time.Second}),
		distrib.WithTap(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Recoveries) == 0 {
		t.Fatal("the CrashOnce fault never triggered a recovery")
	}

	p := replay.NewPlayer(evlog.RunInfo{Workload: "w", Machines: machines, Phases: phases}, rec.Merged())
	sched, err := p.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	// The crashed epoch's launch must have been superseded by the
	// relaunch: the committed schedule re-runs from the rollback base.
	if sched[0].Base != 0 {
		t.Fatalf("committed schedule starts at base %d", sched[0].Base)
	}
	ng2, mods2, sink2 := buildChain(t)
	if _, err := p.Replay(ng2, mods2, batches, distrib.Config{
		Machines: machines, WorkersPerMachine: 1, MaxInFlight: 8, Buffer: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sink2.history(), oracle) {
		t.Error("replay of the recovered run diverges from the sequential oracle")
	}
}
