// Package evlog is the deterministic event log behind the
// record/replay harness (DESIGN.md §11): a Tap observer seam the
// runtime threads through the engine, the distrib link layer and the
// netwire sockets, a Recorder that captures every tapped event into
// per-machine buckets, a length-prefixed gzipped log codec, and a
// deterministic merge that folds the per-machine logs into one
// canonical stream. The merged stream of a fault-free run is
// bit-reproducible: re-recording an in-process replay of the same
// schedule yields byte-identical log files, which is what the golden
// round-trip test pins and what makes a failing fault-sweep seed
// debuggable from its log alone.
//
// The package deliberately depends on nothing above the standard
// library, so every layer of the runtime can import it without cycles;
// the Player that re-drives a recorded run lives in evlog/replay.
package evlog

import "sync"

// Kind tags one recorded event. Kinds split into a deterministic
// class — events whose (key, content) are a pure function of the
// committed run schedule, present identically in a live run and its
// in-process replay — and an auxiliary class (wire- and control-level
// traffic, recovery timing) that documents what a particular live run
// did but is excluded from the canonical merge.
type Kind uint8

// Deterministic-class kinds.
const (
	// KindEpochLaunch records an epoch (re)launch decision: Epoch,
	// Phase = the base phase the epoch resumes after, A = the relaunch
	// attempt (0 until a recovery rolls the run back), Data = the
	// varint-encoded per-machine start indices of the epoch's plan.
	// Machine is -1: the launch is a coordinator decision.
	KindEpochLaunch Kind = 1
	// KindPhaseStart records machine Machine opening phase Phase of
	// epoch Epoch.
	KindPhaseStart Kind = 2
	// KindPhaseCommit records the phase completing on the machine.
	KindPhaseCommit Kind = 3
	// KindFeed records the external-input batch fed to the machine for
	// the phase: A = input count, Hash = content digest.
	KindFeed Kind = 4
	// KindExec records one vertex execution: A = the vertex index
	// local to the machine's subgraph (bridges included; the replay
	// rebuilds the identical subgraph, so local indices align).
	KindExec Kind = 5
	// KindFrameSend records a link-level frame leaving machine A for
	// machine B: Phase/Epoch from the frame, B2 = frame kind,
	// Hash = payload digest.
	KindFrameSend Kind = 6
	// KindFrameRecv records the frame arriving, same key layout.
	KindFrameRecv Kind = 7
)

// Auxiliary-class kinds.
const (
	// KindWireOut records a netwire frame hitting the socket: A = from
	// machine, B = to machine, B2 = frame kind, Hash = encoded bytes.
	KindWireOut Kind = 32
	// KindWireIn records a netwire frame decoded off the socket.
	KindWireIn Kind = 33
	// KindCtlSend records a control-plane frame sent to a participant
	// (A = participant machine, B2 = frame kind).
	KindCtlSend Kind = 34
	// KindCtlRecv records a control-plane frame received from a
	// participant.
	KindCtlRecv Kind = 35
	// KindRecovery records a rollback: Epoch = the epoch that failed,
	// A = the stable epoch restored, B = the relaunched epoch, Data =
	// the rejoined machine indices (varint-encoded).
	KindRecovery Kind = 36
	// KindWireFlush records one coalesced socket write on a batching
	// send link: A = from machine, B = to machine, B2 = the number of
	// frames in the flush (capped at 255), Hash = bytes written.
	KindWireFlush Kind = 37
)

// Deterministic reports whether k belongs to the deterministic class
// covered by the replay contract (DESIGN.md §11). Merge keeps only
// deterministic events; auxiliary events stay in the per-machine logs.
func Deterministic(k Kind) bool { return k < 32 }

// Event is one recorded occurrence. The integer fields double as the
// canonical sort key; see Merge.
type Event struct {
	// Kind tags the event.
	Kind Kind
	// Machine is the recording machine index; -1 for coordinator-level
	// events.
	Machine int
	// Epoch is the epoch the event belongs to.
	Epoch int
	// Phase is the global phase number the event concerns (the epoch
	// base for launch events).
	Phase int
	// A and B carry kind-specific small integers (vertex, link
	// endpoints, counts); see the Kind constants.
	A, B int
	// B2 carries a kind-specific tag (frame kind).
	B2 uint8
	// Hash is a content digest (FNV-1a) for payload-bearing events, so
	// divergence is detectable without storing the payload.
	Hash uint64
	// Data is an optional kind-specific payload (plan starts, rejoined
	// machines).
	Data []byte
}

// Tap receives runtime events. Implementations must be safe for
// concurrent use: machines, their worker pools and the coordinator all
// emit. A nil Tap anywhere in the runtime means no instrumentation at
// all — every seam is a single nil check, pinned by the engine's
// steady-state alloc regression test.
type Tap interface {
	Event(e Event)
}

// Recorder is the standard Tap: it appends every event to a
// per-machine bucket under one mutex. Use Machines/Events to extract
// the buckets for writing, or Merged for the canonical stream.
type Recorder struct {
	mu     sync.Mutex
	events map[int][]Event
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{events: make(map[int][]Event)}
}

// Event implements Tap.
func (r *Recorder) Event(e Event) {
	r.mu.Lock()
	r.events[e.Machine] = append(r.events[e.Machine], e)
	r.mu.Unlock()
}

// Machines lists the machine indices that recorded at least one event,
// in ascending order (the coordinator's -1 bucket first).
func (r *Recorder) Machines() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	ms := make([]int, 0, len(r.events))
	for m := range r.events {
		ms = append(ms, m)
	}
	sortInts(ms)
	return ms
}

// Events returns a copy of machine m's bucket in capture order.
func (r *Recorder) Events(m int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events[m]...)
}

// Merged returns the canonical deterministic-class stream across all
// buckets; see Merge.
func (r *Recorder) Merged() []Event {
	r.mu.Lock()
	buckets := make([][]Event, 0, len(r.events))
	ms := make([]int, 0, len(r.events))
	for m := range r.events {
		ms = append(ms, m)
	}
	sortInts(ms)
	for _, m := range ms {
		buckets = append(buckets, r.events[m])
	}
	r.mu.Unlock()
	return Merge(buckets...)
}

// sortInts is a tiny insertion sort: bucket counts are single digits.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
