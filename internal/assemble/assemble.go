// Package assemble relaxes the paper's idealized timing assumptions.
// §2 assumes "there is no delay between the instant at which an event is
// generated and the instant at which it arrives" and that timestamps are
// perfect; §6 concedes that "in reality, clocks in sensors are noisy and
// message delays may be significant and random. The fusion engine must
// wait long enough after time t to ensure that sensor data taken at time
// t arrives with high probability."
//
// The Assembler implements exactly that wait: events carry their
// generation tick (nominal timestamp) and an arrival tick; a phase for
// tick t is sealed only when the clock reaches t + watermark. Larger
// watermarks lose fewer late events (fewer false negatives downstream)
// but delay every detection by the watermark — the trade-off experiment
// E11 sweeps.
package assemble

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// DelayedEvent is an external observation en route to the fusion engine.
type DelayedEvent struct {
	// Gen is the generation tick: the phase this event belongs to
	// (1-based, the paper's timestamp t).
	Gen int
	// Arrival is the tick at which the event reaches the assembler;
	// Arrival ≥ Gen.
	Arrival int
	// Input is the observation itself, addressed to a source vertex.
	Input core.ExtInput
}

// Stats summarizes an assembler's bookkeeping.
type Stats struct {
	// Accepted counts events that made it into their phase.
	Accepted int64
	// Late counts events dropped because their phase had already been
	// sealed when they arrived.
	Late int64
	// Sealed is the highest tick whose phase has been emitted.
	Sealed int
}

// Assembler buckets delayed events into phases and seals each phase
// watermark ticks after its nominal time.
type Assembler struct {
	watermark int
	buckets   map[int][]core.ExtInput
	sealed    int // phases ≤ sealed have been emitted
	stats     Stats
}

// New returns an assembler with the given watermark (≥ 0).
func New(watermark int) *Assembler {
	if watermark < 0 {
		watermark = 0
	}
	return &Assembler{watermark: watermark, buckets: make(map[int][]core.ExtInput)}
}

// Watermark returns the configured wait.
func (a *Assembler) Watermark() int { return a.watermark }

// Offer delivers one event. Events whose phase is already sealed are
// counted late and dropped — the information they carried is lost to the
// computation, exactly the §6 false-negative mechanism. Offer reports
// whether the event was accepted.
func (a *Assembler) Offer(e DelayedEvent) bool {
	if e.Gen < 1 {
		panic(fmt.Sprintf("assemble: event with generation tick %d", e.Gen))
	}
	if e.Arrival < e.Gen {
		panic(fmt.Sprintf("assemble: event arrives at %d before generation %d", e.Arrival, e.Gen))
	}
	if e.Gen <= a.sealed {
		a.stats.Late++
		return false
	}
	a.buckets[e.Gen] = append(a.buckets[e.Gen], e.Input)
	a.stats.Accepted++
	return true
}

// Advance moves the clock to now and returns the batches of every phase
// sealed by the move — phases sealed+1 .. now-watermark, in order, with
// empty batches for quiet phases (the engine needs every phase started
// so that absence of events is observable). The caller feeds each batch
// to Engine.StartPhase in order.
func (a *Assembler) Advance(now int) [][]core.ExtInput {
	upTo := now - a.watermark
	if upTo <= a.sealed {
		return nil
	}
	out := make([][]core.ExtInput, 0, upTo-a.sealed)
	for t := a.sealed + 1; t <= upTo; t++ {
		out = append(out, a.buckets[t])
		delete(a.buckets, t)
	}
	a.sealed = upTo
	a.stats.Sealed = upTo
	return out
}

// Flush seals every remaining buffered phase up to maxGen and returns
// the batches (used at end of stream).
func (a *Assembler) Flush(maxGen int) [][]core.ExtInput {
	return a.Advance(maxGen + a.watermark)
}

// Pending returns the number of buffered, unsealed phases.
func (a *Assembler) Pending() int { return len(a.buckets) }

// Stats returns a snapshot of the counters.
func (a *Assembler) Stats() Stats { return a.stats }

// Run drives a complete delayed stream through an assembler and a
// freshly supplied engine-like consumer: events are sorted by arrival,
// the clock advances tick by tick, sealed batches are handed to start in
// order. maxGen is the last generation tick (so trailing phases flush).
// It returns the assembler stats.
//
// start is called once per sealed phase, in phase order; it is the
// caller's adapter around Engine.StartPhase (or a recording stub in
// tests).
func Run(events []DelayedEvent, watermark, maxGen int, start func(batch []core.ExtInput) error) (Stats, error) {
	evs := append([]DelayedEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Arrival < evs[j].Arrival })
	a := New(watermark)
	i := 0
	lastArrival := 0
	if n := len(evs); n > 0 {
		lastArrival = evs[n-1].Arrival
	}
	for now := 1; now <= lastArrival; now++ {
		for i < len(evs) && evs[i].Arrival == now {
			a.Offer(evs[i])
			i++
		}
		for _, batch := range a.Advance(now) {
			if err := start(batch); err != nil {
				return a.Stats(), err
			}
		}
	}
	for _, batch := range a.Flush(maxGen) {
		if err := start(batch); err != nil {
			return a.Stats(), err
		}
	}
	return a.Stats(), nil
}

// GeometricDelay derives a deterministic pseudo-random transmission
// delay for (seed, gen, salt): P(delay = k) ∝ (1-p)^k, mean ≈ (1-p)/p.
// Used by simulations to perturb ideal feeds.
func GeometricDelay(seed uint64, gen int, salt uint64, p float64) int {
	if p <= 0 || p >= 1 {
		return 0
	}
	h := mix64(seed ^ uint64(gen)*0x9e3779b97f4a7c15 ^ salt)
	u := float64(h>>11) / float64(1<<53)
	// inverse CDF of geometric distribution
	d := 0
	q := 1 - p
	cum := p
	for u > cum && d < 1000 {
		u -= cum
		cum *= q
		d++
	}
	return d
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
