package assemble

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/event"
)

func ev(gen, arrival, vertex int, val int64) DelayedEvent {
	return DelayedEvent{
		Gen: gen, Arrival: arrival,
		Input: core.ExtInput{Vertex: vertex, Port: 0, Val: event.Int(val)},
	}
}

func TestOnTimeEventsAllAccepted(t *testing.T) {
	a := New(0)
	for g := 1; g <= 5; g++ {
		if !a.Offer(ev(g, g, 1, int64(g))) {
			t.Fatalf("on-time event for phase %d rejected", g)
		}
		batches := a.Advance(g)
		if len(batches) != 1 || len(batches[0]) != 1 {
			t.Fatalf("phase %d: batches = %v", g, batches)
		}
	}
	st := a.Stats()
	if st.Accepted != 5 || st.Late != 0 || st.Sealed != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWatermarkHoldsPhasesOpen(t *testing.T) {
	a := New(3)
	a.Offer(ev(1, 1, 1, 10))
	if got := a.Advance(3); got != nil {
		t.Fatalf("phase 1 sealed at tick 3 with watermark 3: %v", got)
	}
	a.Offer(ev(1, 3, 1, 11)) // delayed duplicate-phase event still accepted
	batches := a.Advance(4)
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("batches at tick 4 = %v", batches)
	}
}

func TestLateEventsDropped(t *testing.T) {
	a := New(1)
	a.Offer(ev(1, 1, 1, 10))
	a.Advance(2) // seals phase 1
	if a.Offer(ev(1, 3, 1, 99)) {
		t.Error("late event accepted")
	}
	st := a.Stats()
	if st.Late != 1 || st.Accepted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdvanceEmitsEmptyPhases(t *testing.T) {
	a := New(0)
	a.Offer(ev(4, 4, 1, 1))
	batches := a.Advance(4)
	if len(batches) != 4 {
		t.Fatalf("expected 4 batches (3 empty + 1), got %d", len(batches))
	}
	for i := 0; i < 3; i++ {
		if len(batches[i]) != 0 {
			t.Errorf("phase %d batch not empty: %v", i+1, batches[i])
		}
	}
	if len(batches[3]) != 1 {
		t.Errorf("phase 4 batch = %v", batches[3])
	}
}

func TestFlushSealsEverything(t *testing.T) {
	a := New(5)
	a.Offer(ev(1, 1, 1, 1))
	a.Offer(ev(3, 3, 1, 3))
	if a.Pending() != 2 {
		t.Errorf("pending = %d", a.Pending())
	}
	batches := a.Flush(3)
	if len(batches) != 3 {
		t.Fatalf("flush batches = %d", len(batches))
	}
	if a.Pending() != 0 {
		t.Errorf("pending after flush = %d", a.Pending())
	}
}

func TestOfferPanicsOnBadEvents(t *testing.T) {
	a := New(1)
	for _, bad := range []DelayedEvent{ev(0, 1, 1, 1), ev(3, 2, 1, 1)} {
		func() {
			defer func() { recover() }()
			a.Offer(bad)
			t.Errorf("bad event %+v accepted", bad)
		}()
	}
}

func TestRunOrdersPhases(t *testing.T) {
	// events arrive out of order; Run must start phases in order with
	// the right contents.
	events := []DelayedEvent{
		ev(2, 5, 1, 20),
		ev(1, 2, 1, 10),
		ev(3, 4, 1, 30),
	}
	var phases [][]core.ExtInput
	st, err := Run(events, 3, 3, func(batch []core.ExtInput) error {
		phases = append(phases, batch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("phases = %d", len(phases))
	}
	for i, want := range []int64{10, 20, 30} {
		if len(phases[i]) != 1 {
			t.Fatalf("phase %d batch = %v", i+1, phases[i])
		}
		got, _ := phases[i][0].Val.AsInt()
		if got != want {
			t.Errorf("phase %d value = %d, want %d", i+1, got, want)
		}
	}
	if st.Accepted != 3 || st.Late != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRunDropsLateWithSmallWatermark(t *testing.T) {
	// phase-1 event arrives at tick 10; watermark 0 seals phase 1 at
	// tick 1 (when the first arrival advances the clock past it).
	events := []DelayedEvent{
		ev(1, 1, 1, 1),
		ev(2, 2, 1, 2),
		ev(1, 10, 1, 99), // very late for phase 1
	}
	var count int
	st, err := Run(events, 0, 2, func(batch []core.ExtInput) error {
		count += len(batch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Late != 1 {
		t.Errorf("late = %d, want 1", st.Late)
	}
	if count != 2 {
		t.Errorf("delivered = %d, want 2", count)
	}
}

func TestGeometricDelayProperties(t *testing.T) {
	// deterministic per (seed, gen)
	if GeometricDelay(1, 5, 2, 0.5) != GeometricDelay(1, 5, 2, 0.5) {
		t.Error("delay not deterministic")
	}
	// degenerate p
	if GeometricDelay(1, 1, 1, 0) != 0 || GeometricDelay(1, 1, 1, 1) != 0 {
		t.Error("degenerate p not zero")
	}
	// mean roughly (1-p)/p
	for _, p := range []float64{0.3, 0.6, 0.9} {
		sum := 0
		const n = 20000
		for g := 1; g <= n; g++ {
			sum += GeometricDelay(42, g, 7, p)
		}
		mean := float64(sum) / n
		want := (1 - p) / p
		if mean < want*0.9-0.05 || mean > want*1.1+0.05 {
			t.Errorf("p=%.1f: mean delay %.3f, want ~%.3f", p, mean, want)
		}
	}
}

// property: for any event set and watermark, accepted + late = total,
// phases are emitted exactly once and in order, and every accepted event
// appears in its own phase's batch.
func TestAssemblerPropertyQuick(t *testing.T) {
	f := func(seed uint64, wmRaw uint8, nRaw uint8) bool {
		wm := int(wmRaw % 6)
		n := 1 + int(nRaw%40)
		var events []DelayedEvent
		maxGen := 0
		for i := 0; i < n; i++ {
			g := 1 + int(mix64(seed^uint64(i))%20)
			d := GeometricDelay(seed, i, 99, 0.5)
			events = append(events, ev(g, g+d, 1, int64(g)))
			if g > maxGen {
				maxGen = g
			}
		}
		var batches [][]core.ExtInput
		st, err := Run(events, wm, maxGen, func(b []core.ExtInput) error {
			batches = append(batches, b)
			return nil
		})
		if err != nil {
			return false
		}
		if st.Accepted+st.Late != int64(n) {
			return false
		}
		if len(batches) < maxGen {
			return false
		}
		// every accepted event is in the batch of its generation phase
		delivered := int64(0)
		for p, b := range batches {
			for _, x := range b {
				g, _ := x.Val.AsInt()
				if int(g) != p+1 {
					return false
				}
				delivered++
			}
		}
		return delivered == st.Accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
