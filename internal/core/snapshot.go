package core

// Snapshotter is the optional Module capability behind live state
// migration. A module that implements it can have its internal state
// serialized while the engine is quiesced (every started phase
// complete, no Step in flight) and re-installed later — possibly in a
// different process — which is what lets distrib's dynamic
// repartitioning move a vertex between machines mid-run without
// replaying its history.
//
// The contract mirrors the Module determinism contract: SnapshotState
// must capture everything RestoreState needs to make the module's
// future Steps behave exactly as if the handoff never happened. Both
// calls happen only while the engine is stopped, so implementations
// need no synchronization. Modules that do not implement Snapshotter
// can still migrate within one process (the module value itself moves);
// only serialized handoff — the wire path — requires it.
type Snapshotter interface {
	Module
	// SnapshotState serializes the module's internal state. The
	// returned bytes are owned by the caller.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the module's internal state with a
	// snapshot previously produced by SnapshotState.
	RestoreState(state []byte) error
}

// VertexSnapshot carries one migrating vertex's serialized module
// state during an epoch switch: the global vertex index and the bytes
// its Snapshotter produced. It is the payload of the state-snapshot
// frame kind internal/netwire encodes for cross-machine handoff.
type VertexSnapshot struct {
	// Vertex is the 1-based global vertex index the state belongs to.
	Vertex int
	// State is the module's serialized internal state.
	State []byte
}
