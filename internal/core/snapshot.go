package core

// Snapshotter is the optional Module capability behind live state
// migration. A module that implements it can have its internal state
// serialized while the engine is quiesced (every started phase
// complete, no Step in flight) and re-installed later — possibly in a
// different process — which is what lets distrib's dynamic
// repartitioning move a vertex between machines mid-run without
// replaying its history.
//
// The contract mirrors the Module determinism contract: SnapshotState
// must capture everything RestoreState needs to make the module's
// future Steps behave exactly as if the handoff never happened. Both
// calls happen only while the engine is stopped, so implementations
// need no synchronization. Modules that do not implement Snapshotter
// can still migrate within one process (the module value itself moves);
// only serialized handoff — the wire path — requires it.
type Snapshotter interface {
	Module
	// SnapshotState serializes the module's internal state. The
	// returned bytes are owned by the caller.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the module's internal state with a
	// snapshot previously produced by SnapshotState.
	RestoreState(state []byte) error
}

// DeltaSnapshotter is the optional refinement of Snapshotter behind
// delta state handoff. Window-backed modules re-serialize entire rings
// at every epoch barrier even though most of a ring is unchanged
// between adjacent barriers; a DeltaSnapshotter can instead encode
// only what changed since a base snapshot both sides already hold.
//
// The contract: given base — a full snapshot this module previously
// produced via SnapshotState — AppendDelta appends a delta such that
// ApplyDelta(base, delta) on a module restored from base leaves it in
// exactly the state SnapshotState would capture now. "Exactly" is
// bit-exact: after ApplyDelta, SnapshotState must return bytes
// identical to the full snapshot the sender would have shipped, which
// is what lets both ends keep converged bases without re-sending them.
// AppendDelta reports ok=false when no profitable or valid delta
// exists (base too old, shape changed) — the caller then falls back to
// the full snapshot. Like Snapshotter, both calls happen only while
// the engine is stopped.
type DeltaSnapshotter interface {
	Snapshotter
	// AppendDelta appends a delta from base to the module's current
	// state onto dst, returning the extended slice. ok=false means no
	// delta could be built and the caller must ship a full snapshot.
	AppendDelta(dst, base []byte) (delta []byte, ok bool, err error)
	// ApplyDelta replaces the module's state with base advanced by
	// delta. On error the module's state is unspecified and the caller
	// must restore from a full snapshot.
	ApplyDelta(base, delta []byte) error
}

// VertexSnapshot carries one migrating vertex's serialized module
// state during an epoch switch: the global vertex index and the bytes
// its Snapshotter produced. It is the payload of the state-snapshot
// frame kind internal/netwire encodes for cross-machine handoff.
type VertexSnapshot struct {
	// Vertex is the 1-based global vertex index the state belongs to.
	Vertex int
	// State is the module's serialized internal state — a full
	// snapshot, or a delta when Delta is set.
	State []byte
	// Delta marks State as a DeltaSnapshotter delta against the full
	// snapshot whose FNV-1a hash is BaseHash; the receiver must hold
	// that exact base or reject the handoff.
	Delta    bool
	BaseHash uint64
}
