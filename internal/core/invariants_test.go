package core_test

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/graph"
)

// invariantChecker is a SetObserver that verifies, at every transition,
// the algorithm's structural invariants:
//
//   - x_p never decreases, and never exceeds x_{p-1} (the §3.1.2 clamp
//     that stops later phases overtaking earlier ones);
//   - a pair enters full at most once, ready at most once, done at most
//     once, and only in the order partial? → full → ready → done;
//   - a pair never becomes ready while an earlier-phase pair for the
//     same vertex is still ready;
//   - phases complete in order.
//
// All callbacks run under the engine lock, so plain fields suffice; the
// mutex is for the final assertions read from the test goroutine.
type invariantChecker struct {
	t  *testing.T
	n  int
	mu sync.Mutex

	x          map[int]int
	pmax       int
	completed  int
	stateOf    map[[2]int]int // 0 none, 1 partial, 2 full, 3 ready, 4 done
	readyPhase map[int]int    // vertex -> phase currently in ready (0 none)
	violations []string
}

func newInvariantChecker(t *testing.T, n int) *invariantChecker {
	return &invariantChecker{
		t: t, n: n,
		x:          map[int]int{},
		stateOf:    map[[2]int]int{},
		readyPhase: map[int]int{},
	}
}

func (c *invariantChecker) fail(format string, args ...any) {
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

func (c *invariantChecker) PhaseStarted(p int) {
	if p != c.pmax+1 {
		c.fail("phase %d started after %d", p, c.pmax)
	}
	c.pmax = p
	c.x[p] = 0
}

func (c *invariantChecker) PhaseCompleted(p int) {
	if p != c.completed+1 {
		c.fail("phase %d completed after %d", p, c.completed)
	}
	c.completed = p
	if c.x[p] != c.n {
		c.fail("phase %d completed with x=%d", p, c.x[p])
	}
}

func (c *invariantChecker) FrontierMoved(p, x int) {
	if x < c.x[p] {
		c.fail("x_%d regressed %d -> %d", p, c.x[p], x)
	}
	prev := c.n // x_0 = N; completed phases are N
	if p-1 > c.completed {
		prev = c.x[p-1]
	}
	if x > prev {
		c.fail("x_%d = %d overtakes x_%d = %d", p, x, p-1, prev)
	}
	c.x[p] = x
}

func (c *invariantChecker) PairPartial(v, p int) {
	k := [2]int{v, p}
	if s := c.stateOf[k]; s != 0 && s != 1 {
		c.fail("(%d,%d) entered partial from state %d", v, p, s)
	}
	c.stateOf[k] = 1
}

func (c *invariantChecker) PairFull(v, p int) {
	k := [2]int{v, p}
	if s := c.stateOf[k]; s >= 2 {
		c.fail("(%d,%d) entered full twice (state %d)", v, p, s)
	}
	c.stateOf[k] = 2
}

func (c *invariantChecker) PairReady(v, p int) {
	k := [2]int{v, p}
	if c.stateOf[k] != 2 {
		c.fail("(%d,%d) ready from state %d", v, p, c.stateOf[k])
	}
	if q := c.readyPhase[v]; q != 0 {
		c.fail("(%d,%d) ready while (%d,%d) still ready", v, p, v, q)
	}
	c.stateOf[k] = 3
	c.readyPhase[v] = p
}

func (c *invariantChecker) PairDone(v, p int) {
	k := [2]int{v, p}
	if c.stateOf[k] != 3 {
		c.fail("(%d,%d) done from state %d", v, p, c.stateOf[k])
	}
	if c.readyPhase[v] != p {
		c.fail("(%d,%d) done but ready phase is %d", v, p, c.readyPhase[v])
	}
	c.stateOf[k] = 4
	c.readyPhase[v] = 0
}

func (c *invariantChecker) PairEnqueued(v, p int)         {}
func (c *invariantChecker) ExecBegin(v, p int)            {}
func (c *invariantChecker) ExecEnd(v, p int, emitted int) {}

func (c *invariantChecker) check() {
	for _, v := range c.violations {
		c.t.Error(v)
	}
}

// TestEngineInvariantsUnderLoad runs random workloads with the checker
// attached and many workers.
func TestEngineInvariantsUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.IntN(30)
		ng, err := graph.RandomConnected(n, rng.Float64()*0.3, rng).Number()
		if err != nil {
			t.Fatal(err)
		}
		chk := newInvariantChecker(t, ng.N())
		mods, _ := buildRecorded(ng, mixedFactory(ng, rng.Uint64()))
		eng, err := core.New(ng, mods, core.Config{
			Workers:     1 + rng.IntN(10),
			MaxInFlight: 1 + rng.IntN(12),
			Observer:    chk,
		})
		if err != nil {
			t.Fatal(err)
		}
		phases := 10 + rng.IntN(50)
		if _, err := eng.Run(make([][]core.ExtInput, phases)); err != nil {
			t.Fatal(err)
		}
		chk.mu.Lock()
		chk.check()
		if chk.completed != phases {
			t.Errorf("trial %d: completed %d of %d phases", trial, chk.completed, phases)
		}
		// every pair that entered any set ended done
		for k, s := range chk.stateOf {
			if s != 4 {
				t.Errorf("trial %d: pair %v ended in state %d", trial, k, s)
			}
		}
		chk.mu.Unlock()
	}
}

// phaseOrderGuard wraps a module and asserts the engine's per-module
// contract where no observer can watch — attaching an Observer would
// force the engine off the lock-free path, so the check rides inside
// Step itself: calls for one vertex never overlap, and phases arrive in
// strictly increasing order. Violations are counted, not fataled, since
// Step runs on worker goroutines.
type phaseOrderGuard struct {
	inner  core.Module
	active int32
	last   int
	fails  *int32
}

func (g *phaseOrderGuard) Step(ctx *core.Context) {
	if atomic.AddInt32(&g.active, 1) != 1 {
		atomic.AddInt32(g.fails, 1)
	}
	if p := ctx.Phase(); p <= g.last {
		atomic.AddInt32(g.fails, 1)
	} else {
		g.last = p
	}
	g.inner.Step(ctx)
	atomic.AddInt32(&g.active, -1)
}

// TestFastPathStepContract hammers the decentralized commit path with
// random graphs and worker counts and verifies, from inside the modules
// themselves, that per-vertex execution stays exclusive and
// phase-ordered, and that every started phase commits.
func TestFastPathStepContract(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 0xFA57))
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.IntN(40)
		ng, err := graph.RandomConnected(n, rng.Float64()*0.3, rng).Number()
		if err != nil {
			t.Fatal(err)
		}
		var fails int32
		factory := mixedFactory(ng, rng.Uint64())
		mods := make([]core.Module, ng.N())
		for v := 1; v <= ng.N(); v++ {
			mods[v-1] = &phaseOrderGuard{inner: factory(v), fails: &fails}
		}
		eng, err := core.New(ng, mods, core.Config{
			Workers:     2 + rng.IntN(8),
			MaxInFlight: 1 + rng.IntN(12),
		})
		if err != nil {
			t.Fatal(err)
		}
		phases := 10 + rng.IntN(50)
		st, err := eng.Run(make([][]core.ExtInput, phases))
		if err != nil {
			t.Fatal(err)
		}
		if got := atomic.LoadInt32(&fails); got != 0 {
			t.Fatalf("trial %d: %d step-contract violations (overlap or phase order)", trial, got)
		}
		if st.PhasesCompleted != int64(phases) {
			t.Fatalf("trial %d: completed %d of %d phases", trial, st.PhasesCompleted, phases)
		}
	}
}

// TestEngineInvariantsFigure3 runs the checker over the exact Figure 3
// interleaving (manual mode) as a focused sanity case.
func TestEngineInvariantsFigure3(t *testing.T) {
	ng, _ := graph.Figure3().Number()
	chk := newInvariantChecker(t, ng.N())
	relay := core.StepFunc(func(ctx *core.Context) {
		if v, ok := ctx.FirstIn(); ok {
			ctx.EmitAll(v)
		}
	})
	emitOn := func(ph map[int]bool) core.Module {
		return core.StepFunc(func(ctx *core.Context) {
			if ph[ctx.Phase()] {
				ctx.EmitAll(event.Int(1))
			}
		})
	}
	mods := []core.Module{
		emitOn(map[int]bool{1: true}),
		emitOn(map[int]bool{1: true, 2: true}),
		relay, relay, relay, relay,
	}
	eng, err := core.New(ng, mods, core.Config{Manual: true, Observer: chk})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.StartPhase(nil); err != nil {
			t.Fatal(err)
		}
	}
	for eng.StepOne() {
	}
	chk.check()
	if chk.completed != 2 {
		t.Errorf("completed = %d", chk.completed)
	}
}
