package core

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/event"
	"repro/internal/graph"
)

// phaseLog records the phase number of every Step at a sink — the
// observable modules use to prove numbering continuity across a resume.
type phaseLog struct {
	phases []int
	vals   []int64
}

func (s *phaseLog) Step(ctx *Context) {
	if v, ok := ctx.FirstIn(); ok {
		i, _ := v.AsInt()
		s.phases = append(s.phases, ctx.Phase())
		s.vals = append(s.vals, i)
	}
}

// accumulator is a minimal stateful Snapshotter: it folds inputs into a
// running sum and emits it every phase its inputs changed.
type accumulator struct {
	sum int64
}

func (a *accumulator) Step(ctx *Context) {
	if v, ok := ctx.FirstIn(); ok {
		i, _ := v.AsInt()
		a.sum += i
		ctx.EmitAll(event.Int(a.sum))
	}
}

func (a *accumulator) SnapshotState() ([]byte, error) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(a.sum))
	return buf[:], nil
}

func (a *accumulator) RestoreState(state []byte) error {
	if len(state) != 8 {
		return errors.New("accumulator: bad snapshot length")
	}
	a.sum = int64(binary.LittleEndian.Uint64(state))
	return nil
}

func chain3(t *testing.T) (*graph.Numbered, *accumulator, *phaseLog, []Module) {
	t.Helper()
	ng, err := graph.Chain(3).Number()
	if err != nil {
		t.Fatal(err)
	}
	src := StepFunc(func(ctx *Context) {
		ctx.EmitAll(event.Int(int64(ctx.Phase())))
	})
	acc := &accumulator{}
	log := &phaseLog{}
	return ng, acc, log, []Module{src, acc, log}
}

// TestBasePhaseNumbering: an engine built with BasePhase resumes the
// numbering where a predecessor left off — modules observe globally
// continuous ctx.Phase() values and stats count only this engine's own
// phases.
func TestBasePhaseNumbering(t *testing.T) {
	ng, _, log, mods := chain3(t)
	eng, err := New(ng, mods, Config{Workers: 2, BasePhase: 10})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(make([][]ExtInput, 5))
	if err != nil {
		t.Fatal(err)
	}
	if st.PhasesCompleted != 5 {
		t.Errorf("PhasesCompleted = %d, want 5", st.PhasesCompleted)
	}
	want := []int{11, 12, 13, 14, 15}
	if len(log.phases) != len(want) {
		t.Fatalf("sink phases = %v, want %v", log.phases, want)
	}
	for i := range want {
		if log.phases[i] != want[i] {
			t.Fatalf("sink phases = %v, want %v", log.phases, want)
		}
	}
}

func TestBasePhaseNegativeRejected(t *testing.T) {
	ng, _, _, mods := chain3(t)
	if _, err := New(ng, mods, Config{BasePhase: -1}); err == nil {
		t.Error("negative BasePhase accepted")
	}
}

// TestRunFeedStopFeed: a feed returning ErrStopFeed quiesces the run —
// started phases complete, the sentinel surfaces, and the stats count
// exactly the phases that ran.
func TestRunFeedStopFeed(t *testing.T) {
	ng, _, log, mods := chain3(t)
	eng, err := New(ng, mods, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.RunFeed(10, func(p int) ([]ExtInput, error) {
		if p > 3 {
			return nil, ErrStopFeed
		}
		return nil, nil
	}, nil)
	if !errors.Is(err, ErrStopFeed) {
		t.Fatalf("err = %v, want ErrStopFeed", err)
	}
	if st.PhasesCompleted != 3 {
		t.Errorf("PhasesCompleted = %d, want 3", st.PhasesCompleted)
	}
	if len(log.phases) != 3 {
		t.Errorf("sink saw phases %v, want exactly 1..3", log.phases)
	}
}

// TestSnapshotResume: stopping an engine at a phase boundary, moving
// the Snapshotter module's state into a fresh module set, and resuming
// on a BasePhase engine reproduces the uninterrupted run bit for bit.
func TestSnapshotResume(t *testing.T) {
	const total, cut = 9, 4

	ngRef, _, logRef, modsRef := chain3(t)
	engRef, err := New(ngRef, modsRef, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engRef.Run(make([][]ExtInput, total)); err != nil {
		t.Fatal(err)
	}

	// First epoch: phases 1..cut.
	ng1, acc1, log1, mods1 := chain3(t)
	eng1, err := New(ng1, mods1, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng1.Run(make([][]ExtInput, cut)); err != nil {
		t.Fatal(err)
	}
	snap, err := acc1.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	// Second epoch: fresh modules, restored state, phases cut+1..total.
	ng2, acc2, log2, mods2 := chain3(t)
	if err := acc2.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	eng2, err := New(ng2, mods2, Config{Workers: 2, BasePhase: cut})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Run(make([][]ExtInput, total-cut)); err != nil {
		t.Fatal(err)
	}

	got := append(append([]int64(nil), log1.vals...), log2.vals...)
	if len(got) != len(logRef.vals) {
		t.Fatalf("resumed run produced %d sink values, reference %d", len(got), len(logRef.vals))
	}
	for i := range got {
		if got[i] != logRef.vals[i] {
			t.Fatalf("sink value %d: resumed %d, reference %d", i, got[i], logRef.vals[i])
		}
	}
}
