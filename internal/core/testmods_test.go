package core_test

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/event"
)

// mix64 is a splitmix64 finalizer, used to give test modules behavior
// that is pseudo-random yet a pure function of their identity, phase and
// inputs — the determinism serializable executions must preserve.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// srcEvery is a source that emits Int(seed-mixed phase) on all outputs
// every phase.
type srcEvery struct{ seed uint64 }

func (s *srcEvery) Step(ctx *core.Context) {
	ctx.EmitAll(event.Int(int64(mix64(s.seed ^ uint64(ctx.Phase())))))
}

// srcSparse emits on all outputs only when its phase hash falls below the
// change probability (num/den); otherwise stays silent, exercising the
// absence-of-message machinery.
type srcSparse struct {
	seed     uint64
	num, den uint64
}

func (s *srcSparse) Step(ctx *core.Context) {
	h := mix64(s.seed ^ uint64(ctx.Phase()))
	if h%s.den < s.num {
		ctx.EmitAll(event.Int(int64(h)))
	}
}

// srcExt relays externally injected values: emits the sum of all values
// delivered to it this phase, if any.
type srcExt struct{}

func (s *srcExt) Step(ctx *core.Context) {
	if ctx.InCount() == 0 {
		return
	}
	var sum int64
	for p := 0; p < ctx.Ports(); p++ {
		if v, ok := ctx.In(p); ok {
			i, _ := v.AsInt()
			sum += i
		}
	}
	ctx.EmitAll(event.Int(sum))
}

// hashMod is a stateful interior module: it remembers the last value seen
// on each port, folds newly received values into that memory, and emits a
// hash of (phase, memory) whenever at least one input changed. Its output
// depends on its entire input history, so any serializability violation
// — reordered or lost messages — cascades into different emissions.
type hashMod struct {
	seed uint64
	mem  []int64
}

func (m *hashMod) Step(ctx *core.Context) {
	if ctx.InCount() == 0 {
		return
	}
	if m.mem == nil {
		m.mem = make([]int64, ctx.Ports())
	}
	for p := 0; p < ctx.Ports(); p++ {
		if v, ok := ctx.In(p); ok {
			i, _ := v.AsInt()
			m.mem[p] = i
		}
	}
	h := m.seed
	for _, x := range m.mem {
		h = mix64(h ^ uint64(x))
	}
	ctx.EmitAll(event.Int(int64(h)))
}

// sparseMod is hashMod but only forwards when the folded hash is below
// the change threshold, creating interior sparsity (the anomaly-detector
// pattern of §1: output only for anomalous inputs).
type sparseMod struct {
	hashMod
	num, den uint64
}

func (m *sparseMod) Step(ctx *core.Context) {
	if ctx.InCount() == 0 {
		return
	}
	if m.mem == nil {
		m.mem = make([]int64, ctx.Ports())
	}
	for p := 0; p < ctx.Ports(); p++ {
		if v, ok := ctx.In(p); ok {
			i, _ := v.AsInt()
			m.mem[p] = i
		}
	}
	h := m.seed
	for _, x := range m.mem {
		h = mix64(h ^ uint64(x))
	}
	if h%m.den < m.num {
		ctx.EmitAll(event.Int(int64(h)))
	}
}

// spinMod burns roughly `loops` iterations of integer work and then
// relays like hashMod; used for grain/pipelining tests.
type spinMod struct {
	hashMod
	loops int
}

func (m *spinMod) Step(ctx *core.Context) {
	acc := uint64(ctx.Phase())
	for i := 0; i < m.loops; i++ {
		acc = mix64(acc)
	}
	if acc == 0xdeadbeef { // never true; defeats dead-code elimination
		ctx.EmitAll(event.Int(int64(acc)))
		return
	}
	m.hashMod.Step(ctx)
}

// recEntry is one recorded execution of a vertex.
type recEntry struct {
	phase int
	ports []int
	vals  []event.Value
	emits []core.Emission
}

// recorder wraps a module and records every execution: the phase, the
// exact input set (sorted by port) and the emissions. Comparing recorder
// logs between the parallel engine and the sequential oracle checks
// serializability at every vertex, not just at sinks.
type recorder struct {
	inner core.Module
	log   []recEntry
}

func (r *recorder) Step(ctx *core.Context) {
	e := recEntry{phase: ctx.Phase()}
	for p := 0; p < ctx.Ports(); p++ {
		if v, ok := ctx.In(p); ok {
			e.ports = append(e.ports, p)
			e.vals = append(e.vals, v)
		}
	}
	r.inner.Step(ctx)
	e.emits = append(e.emits, ctx.Emissions()...)
	sort.Slice(e.emits, func(i, j int) bool { return e.emits[i].Out < e.emits[j].Out })
	r.log = append(r.log, e)
}

func sameLogs(a, b []recEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.phase != y.phase || len(x.ports) != len(y.ports) || len(x.emits) != len(y.emits) {
			return false
		}
		for j := range x.ports {
			if x.ports[j] != y.ports[j] || !x.vals[j].Equal(y.vals[j]) {
				return false
			}
		}
		for j := range x.emits {
			if x.emits[j].Out != y.emits[j].Out || !x.emits[j].Val.Equal(y.emits[j].Val) {
				return false
			}
		}
	}
	return true
}

// depthProbe observes concurrent executions and tracks the maximum number
// of distinct phases in flight simultaneously (Figure 1's notion of
// pipelining depth).
type depthProbe struct {
	mu       sync.Mutex
	inFlight map[int]int // phase -> executing count
	maxDepth int
	maxConc  int // max concurrently executing pairs
	cur      int
}

func newDepthProbe() *depthProbe { return &depthProbe{inFlight: make(map[int]int)} }

func (d *depthProbe) PhaseStarted(p int)    {}
func (d *depthProbe) PairEnqueued(v, p int) {}
func (d *depthProbe) PhaseCompleted(p int)  {}

func (d *depthProbe) ExecBegin(v, p int) {
	d.mu.Lock()
	d.inFlight[p]++
	d.cur++
	if len(d.inFlight) > d.maxDepth {
		d.maxDepth = len(d.inFlight)
	}
	if d.cur > d.maxConc {
		d.maxConc = d.cur
	}
	d.mu.Unlock()
}

func (d *depthProbe) ExecEnd(v, p int, emitted int) {
	d.mu.Lock()
	d.inFlight[p]--
	if d.inFlight[p] == 0 {
		delete(d.inFlight, p)
	}
	d.cur--
	d.mu.Unlock()
}

func (d *depthProbe) MaxDepth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.maxDepth
}
