package core

import "repro/internal/event"

// PortIn is one input message addressed to a port, used when driving
// modules directly (outside the parallel engine).
type PortIn struct {
	Port int
	Val  event.Value
}

// Driver executes modules one Step at a time, reusing a single Context.
// It exists so that alternative executors — the sequential oracle and the
// full-dataflow barrier baseline in internal/baseline — can run the same
// Module implementations the parallel engine runs, which is what makes
// output histories directly comparable.
//
// A Driver is not safe for concurrent use; give each goroutine its own.
type Driver struct {
	ctx Context
}

// Exec runs m for (vertex v, phase p) with the given inputs and returns
// the emissions. ports is the visible input-port count (the in-degree;
// deliveries beyond it widen the context, as for external source ports)
// and outs the out-degree. The returned slice is reused by the next Exec
// call; callers must consume it before calling Exec again.
func (d *Driver) Exec(m Module, v, p, ports, outs int, in []PortIn) []Emission {
	d.ctx.reset(v, p, ports, outs)
	for _, pv := range in {
		d.ctx.deliver(pv.Port, pv.Val)
	}
	m.Step(&d.ctx)
	return d.ctx.emits
}
