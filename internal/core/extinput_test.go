package core_test

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/graph"
)

// TestMultiPortExternalInputs: a source can receive several external
// observations on distinct ports in one phase; the context widens beyond
// the graph in-degree (zero, for sources) and delivers each port.
func TestMultiPortExternalInputs(t *testing.T) {
	ng, _ := graph.Chain(2).Number()
	var seen [][]float64
	src := core.StepFunc(func(ctx *core.Context) {
		var row []float64
		for p := 0; p < ctx.Ports(); p++ {
			if v, ok := ctx.In(p); ok {
				x, _ := v.AsFloat()
				row = append(row, float64(p)*1000+x)
			}
		}
		if row != nil {
			seen = append(seen, row)
		}
	})
	sink := core.StepFunc(func(ctx *core.Context) {})
	e, err := core.New(ng, []core.Module{src, sink}, core.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]core.ExtInput{{
		{Vertex: 1, Port: 0, Val: event.Float(1)},
		{Vertex: 1, Port: 3, Val: event.Float(2)},
	}}
	if _, err := e.Run(batches); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || len(seen[0]) != 2 {
		t.Fatalf("seen = %v", seen)
	}
	if seen[0][0] != 1 || seen[0][1] != 3002 {
		t.Errorf("ports/values = %v, want [1 3002]", seen[0])
	}
}

// TestLatePortOverwrite: two external values on the same port in one
// phase — the later one wins (one message per edge per phase).
func TestSamePortOverwrite(t *testing.T) {
	ng, _ := graph.Chain(2).Number()
	var got float64
	src := core.StepFunc(func(ctx *core.Context) {
		if v, ok := ctx.In(0); ok {
			got, _ = v.AsFloat()
		}
	})
	e, _ := core.New(ng, []core.Module{src, core.StepFunc(func(*core.Context) {})}, core.Config{})
	batches := [][]core.ExtInput{{
		{Vertex: 1, Port: 0, Val: event.Float(1)},
		{Vertex: 1, Port: 0, Val: event.Float(9)},
	}}
	if _, err := e.Run(batches); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("got %g, want 9 (later value wins)", got)
	}
}

// TestZeroPhaseRun: running with no phases at all terminates cleanly.
func TestZeroPhaseRun(t *testing.T) {
	ng, _ := graph.Chain(2).Number()
	e, _ := core.New(ng, []core.Module{&srcEvery{}, &hashMod{}}, core.Config{Workers: 3})
	st, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executions != 0 || st.PhasesCompleted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestHugeFanInOut: a single source feeding 200 parallel vertices that
// join into one sink stresses the bitset paths across word boundaries.
func TestHugeFanInOut(t *testing.T) {
	const width = 200
	ng, err := graph.FanOutIn(width).Number()
	if err != nil {
		t.Fatal(err)
	}
	batches := make([][]core.ExtInput, 30)
	seqMods, seqRecs := buildRecorded(ng, mixedFactory(ng, 0xFA))
	if _, err := baseline.Sequential(ng, seqMods, batches); err != nil {
		t.Fatal(err)
	}
	parMods, parRecs := buildRecorded(ng, mixedFactory(ng, 0xFA))
	e, err := core.New(ng, parMods, core.Config{Workers: 16, MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(batches); err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= ng.N(); v++ {
		if !sameLogs(seqRecs[v-1].log, parRecs[v-1].log) {
			t.Fatalf("vertex %d diverged on wide graph", v)
		}
	}
}

// TestRunFeed: the pull-based run loop (the distrib link hook) matches
// a batch-driven Run, reports phase starts in order, and aborts cleanly
// on a feed error with the already-started phases completed.
func TestRunFeed(t *testing.T) {
	ng, _ := graph.Chain(3).Number()
	mk := func() ([]core.Module, *int) {
		var relayed int
		mods := []core.Module{
			core.StepFunc(func(ctx *core.Context) {
				if v, ok := ctx.In(0); ok {
					ctx.EmitAll(v)
				}
			}),
			core.StepFunc(func(ctx *core.Context) {
				if v, ok := ctx.FirstIn(); ok {
					ctx.EmitAll(v)
				}
			}),
			core.StepFunc(func(ctx *core.Context) {
				if _, ok := ctx.FirstIn(); ok {
					relayed++
				}
			}),
		}
		return mods, &relayed
	}

	mods, relayed := mk()
	e, err := core.New(ng, mods, core.Config{Workers: 2, MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	var started []int
	st, err := e.RunFeed(10, func(p int) ([]core.ExtInput, error) {
		if p%2 == 0 { // silent even phases
			return nil, nil
		}
		return []core.ExtInput{{Vertex: 1, Port: 0, Val: event.Int(int64(p))}}, nil
	}, func(p int) { started = append(started, p) })
	if err != nil {
		t.Fatal(err)
	}
	if st.PhasesCompleted != 10 || *relayed != 5 {
		t.Errorf("completed %d phases, relayed %d values", st.PhasesCompleted, *relayed)
	}
	if len(started) != 10 {
		t.Fatalf("onStarted fired %d times", len(started))
	}
	for i, p := range started {
		if p != i+1 {
			t.Fatalf("onStarted order %v", started)
		}
	}

	// Feed error at phase 4: three phases complete, error propagates.
	mods, relayed = mk()
	e, err = core.New(ng, mods, core.Config{Workers: 2, MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	feedErr := fmt.Errorf("upstream gone")
	st, err = e.RunFeed(10, func(p int) ([]core.ExtInput, error) {
		if p == 4 {
			return nil, feedErr
		}
		return []core.ExtInput{{Vertex: 1, Port: 0, Val: event.Int(int64(p))}}, nil
	}, nil)
	if err != feedErr {
		t.Fatalf("err = %v, want feed error", err)
	}
	if st.PhasesCompleted != 3 || *relayed != 3 {
		t.Errorf("after abort: %d phases, %d relayed", st.PhasesCompleted, *relayed)
	}
}

// TestWaitPhaseZero returns immediately.
func TestWaitPhaseZero(t *testing.T) {
	ng, _ := graph.Chain(2).Number()
	e, _ := core.New(ng, []core.Module{&srcEvery{}, &hashMod{}}, core.Config{})
	e.WaitPhase(0) // must not block
	e.Stop()
}
