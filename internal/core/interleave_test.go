package core_test

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/graph"
)

// readyShadow mirrors the engine's run queue through observer callbacks
// so a test can pick an arbitrary ready pair to execute next. Used with
// Manual mode to explore adversarial interleavings that a worker pool
// would be unlikely to produce.
type readyShadow struct {
	mu    sync.Mutex
	ready [][2]int
}

func (s *readyShadow) PhaseStarted(p int)   {}
func (s *readyShadow) PhaseCompleted(p int) {}
func (s *readyShadow) ExecBegin(v, p int)   {}
func (s *readyShadow) ExecEnd(v, p, e int)  {}

func (s *readyShadow) PairEnqueued(v, p int) {
	s.mu.Lock()
	s.ready = append(s.ready, [2]int{v, p})
	s.mu.Unlock()
}

func (s *readyShadow) take(i int) [2]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	pair := s.ready[i]
	s.ready = append(s.ready[:i], s.ready[i+1:]...)
	return pair
}

func (s *readyShadow) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ready)
}

// TestAdversarialInterleavings drives random graphs through random
// legal schedules — at each step either starting the next phase or
// executing a uniformly chosen ready pair — and checks every vertex's
// log against the sequential oracle.
func TestAdversarialInterleavings(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 6))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.IntN(25)
		g := graph.RandomConnected(n, rng.Float64()*0.3, rng)
		ng, err := g.Number()
		if err != nil {
			t.Fatal(err)
		}
		seed := rng.Uint64()
		phases := 5 + rng.IntN(25)
		batches := make([][]core.ExtInput, phases)

		seqMods, seqRecs := buildRecorded(ng, mixedFactory(ng, seed))
		if _, err := baseline.Sequential(ng, seqMods, batches); err != nil {
			t.Fatal(err)
		}

		shadow := &readyShadow{}
		parMods, parRecs := buildRecorded(ng, mixedFactory(ng, seed))
		eng, err := core.New(ng, parMods, core.Config{Manual: true, Observer: shadow, CountExecutions: true})
		if err != nil {
			t.Fatal(err)
		}
		started := 0
		for {
			canStart := started < phases
			canStep := shadow.size() > 0
			if !canStart && !canStep {
				break
			}
			// bias toward opening many phases early in some trials, and
			// toward draining in others
			startBias := 0.2 + 0.6*float64(trial%4)/3.0
			if canStart && (!canStep || rng.Float64() < startBias) {
				if _, err := eng.StartPhase(batches[started]); err != nil {
					t.Fatal(err)
				}
				started++
				continue
			}
			pair := shadow.take(rng.IntN(shadow.size()))
			if !eng.StepPair(pair[0], pair[1]) {
				t.Fatalf("trial %d: ready pair (%d,%d) refused", trial, pair[0], pair[1])
			}
		}
		for v := 1; v <= ng.N(); v++ {
			if !sameLogs(seqRecs[v-1].log, parRecs[v-1].log) {
				t.Fatalf("trial %d (n=%d phases=%d): vertex %d diverged under adversarial schedule",
					trial, n, phases, v)
			}
		}
		for k, c := range eng.ExecCounts() {
			if c != 1 {
				t.Fatalf("trial %d: pair %v executed %d times", trial, k, c)
			}
		}
	}
}

// TestInterleavingQuick is the testing/quick form: any (seed, shape)
// tuple yields oracle-identical behavior under a seed-derived schedule.
func TestInterleavingQuick(t *testing.T) {
	f := func(seed uint64, nRaw, phRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 0x5eed))
		n := 2 + int(nRaw%15)
		phases := 1 + int(phRaw%12)
		ng, err := graph.RandomConnected(n, 0.25, rng).Number()
		if err != nil {
			return false
		}
		batches := make([][]core.ExtInput, phases)
		seqMods, seqRecs := buildRecorded(ng, mixedFactory(ng, seed))
		if _, err := baseline.Sequential(ng, seqMods, batches); err != nil {
			return false
		}
		shadow := &readyShadow{}
		parMods, parRecs := buildRecorded(ng, mixedFactory(ng, seed))
		eng, err := core.New(ng, parMods, core.Config{Manual: true, Observer: shadow})
		if err != nil {
			return false
		}
		started := 0
		for started < phases || shadow.size() > 0 {
			if started < phases && (shadow.size() == 0 || rng.IntN(2) == 0) {
				if _, err := eng.StartPhase(nil); err != nil {
					return false
				}
				started++
				continue
			}
			pair := shadow.take(rng.IntN(shadow.size()))
			if !eng.StepPair(pair[0], pair[1]) {
				return false
			}
		}
		for v := 1; v <= ng.N(); v++ {
			if !sameLogs(seqRecs[v-1].log, parRecs[v-1].log) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestConcurrentMatchesManualOracle pits the decentralized commit path
// (worker pool, no observer, per-vertex locks) against a Manual-mode
// oracle driven through a random legal schedule. Both run the same
// seeded random DAG with the same module seeds and external inputs, so
// every vertex's recorded log — phases, exact input sets, emissions —
// must match, and so must the execution-count maps. The oracle runs the
// compat path (Manual forces it), the replicas run the lock-free path,
// so any divergence pins a serializability bug in the new locking
// protocol; under -race the replicas also hammer the ascending
// vertex-lock ordering from several workers at once.
func TestConcurrentMatchesManualOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xFA57, 17))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.IntN(30)
		ng, err := graph.RandomConnected(n, rng.Float64()*0.35, rng).Number()
		if err != nil {
			t.Fatal(err)
		}
		seed := rng.Uint64()
		phases := 5 + rng.IntN(30)
		batches := make([][]core.ExtInput, phases)
		for p := range batches {
			for v := 1; v <= ng.Sources(); v++ {
				if rng.IntN(3) == 0 {
					batches[p] = append(batches[p],
						core.ExtInput{Vertex: v, Port: 0, Val: event.Int(int64(p*31 + v))})
				}
			}
		}

		shadow := &readyShadow{}
		oraMods, oraRecs := buildRecorded(ng, mixedFactory(ng, seed))
		ora, err := core.New(ng, oraMods, core.Config{Manual: true, Observer: shadow, CountExecutions: true})
		if err != nil {
			t.Fatal(err)
		}
		started := 0
		for started < phases || shadow.size() > 0 {
			if started < phases && (shadow.size() == 0 || rng.IntN(3) == 0) {
				if _, err := ora.StartPhase(batches[started]); err != nil {
					t.Fatal(err)
				}
				started++
				continue
			}
			pair := shadow.take(rng.IntN(shadow.size()))
			if !ora.StepPair(pair[0], pair[1]) {
				t.Fatalf("trial %d: oracle refused ready pair %v", trial, pair)
			}
		}
		oraCounts := ora.ExecCounts()

		for _, workers := range []int{2, 4, 8} {
			conMods, conRecs := buildRecorded(ng, mixedFactory(ng, seed))
			eng, err := core.New(ng, conMods, core.Config{
				Workers:         workers,
				MaxInFlight:     1 + rng.IntN(16),
				CountExecutions: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(batches); err != nil {
				t.Fatal(err)
			}
			for v := 1; v <= ng.N(); v++ {
				if !sameLogs(oraRecs[v-1].log, conRecs[v-1].log) {
					t.Fatalf("trial %d (n=%d phases=%d workers=%d): vertex %d diverged from manual oracle",
						trial, n, phases, workers, v)
				}
			}
			conCounts := eng.ExecCounts()
			if len(conCounts) != len(oraCounts) {
				t.Fatalf("trial %d workers=%d: %d executed pairs, oracle has %d",
					trial, workers, len(conCounts), len(oraCounts))
			}
			for k, c := range conCounts {
				if oraCounts[k] != c {
					t.Fatalf("trial %d workers=%d: pair %v executed %d times, oracle %d",
						trial, workers, k, c, oraCounts[k])
				}
			}
		}
	}
}

// TestManualModeBasics covers the manual-stepping API surface itself.
func TestManualModeBasics(t *testing.T) {
	ng, _ := graph.Chain(3).Number()
	relay := core.StepFunc(func(ctx *core.Context) {
		if v, ok := ctx.FirstIn(); ok {
			ctx.EmitAll(v)
		}
	})
	src := core.StepFunc(func(ctx *core.Context) { ctx.EmitAll(event.Int(int64(ctx.Phase()))) })
	eng, err := core.New(ng, []core.Module{src, relay, relay}, core.Config{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if eng.StepOne() {
		t.Error("StepOne on empty queue succeeded")
	}
	if eng.StepPair(1, 1) {
		t.Error("StepPair before phase start succeeded")
	}
	if _, err := eng.StartPhase(nil); err != nil {
		t.Fatal(err)
	}
	if eng.StepPair(2, 1) {
		t.Error("StepPair for not-yet-ready pair succeeded")
	}
	for i := 0; i < 3; i++ {
		if !eng.StepOne() {
			t.Fatalf("StepOne %d failed", i)
		}
	}
	if st := eng.Stats(); st.PhasesCompleted != 1 || st.Executions != 3 {
		t.Errorf("stats = %+v", st)
	}
	// Start() in manual mode spawns nothing; Stop still works.
	eng.Start()
	eng.Stop()
}

func TestStepOnePanicsWithoutManual(t *testing.T) {
	ng, _ := graph.Chain(2).Number()
	eng, _ := core.New(ng, []core.Module{&srcEvery{}, &hashMod{}}, core.Config{})
	defer func() {
		if recover() == nil {
			t.Error("StepOne without Manual did not panic")
		}
	}()
	eng.StepOne()
}

func TestStepPairPanicsWithoutManual(t *testing.T) {
	ng, _ := graph.Chain(2).Number()
	eng, _ := core.New(ng, []core.Module{&srcEvery{}, &hashMod{}}, core.Config{})
	defer func() {
		if recover() == nil {
			t.Error("StepPair without Manual did not panic")
		}
	}()
	eng.StepPair(1, 1)
}
