package core_test

import (
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/graph"
)

// buildRecorded constructs recorder-wrapped modules for graph ng using
// factory to create the inner module of each vertex. Returns the module
// slice and the recorders for later log comparison.
func buildRecorded(ng *graph.Numbered, factory func(v int) core.Module) ([]core.Module, []*recorder) {
	mods := make([]core.Module, ng.N())
	recs := make([]*recorder, ng.N())
	for v := 1; v <= ng.N(); v++ {
		recs[v-1] = &recorder{inner: factory(v)}
		mods[v-1] = recs[v-1]
	}
	return mods, recs
}

// mixedFactory gives vertex v deterministic pseudo-random behavior:
// sources emit sparsely, interior vertices are a mix of always-forward
// and sparse-forward stateful hashers.
func mixedFactory(ng *graph.Numbered, seed uint64) func(v int) core.Module {
	return func(v int) core.Module {
		h := mix64(seed ^ uint64(v))
		if ng.IsSource(v) {
			return &srcSparse{seed: h, num: 1 + h%4, den: 4} // fire 25-100% of phases
		}
		if h%3 == 0 {
			return &sparseMod{hashMod: hashMod{seed: h}, num: 1 + h%3, den: 3}
		}
		return &hashMod{seed: h}
	}
}

func runEngine(t *testing.T, ng *graph.Numbered, mods []core.Module, cfg core.Config, batches [][]core.ExtInput) core.Stats {
	t.Helper()
	e, err := core.New(ng, mods, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := e.Run(batches)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return st
}

func TestNewValidation(t *testing.T) {
	ng, _ := graph.Chain(2).Number()
	if _, err := core.New(ng, []core.Module{&srcEvery{}}, core.Config{}); err == nil {
		t.Error("module count mismatch accepted")
	}
	if _, err := core.New(ng, []core.Module{&srcEvery{}, nil}, core.Config{}); err == nil {
		t.Error("nil module accepted")
	}
	empty, _ := graph.New().Number()
	if _, err := core.New(empty, nil, core.Config{}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestStartPhaseValidation(t *testing.T) {
	ng, _ := graph.Chain(3).Number()
	e, _ := core.New(ng, []core.Module{&srcEvery{}, &hashMod{}, &hashMod{}}, core.Config{})
	if _, err := e.StartPhase([]core.ExtInput{{Vertex: 2, Port: 0, Val: event.Int(1)}}); err == nil {
		t.Error("external input to non-source accepted")
	}
	if _, err := e.StartPhase([]core.ExtInput{{Vertex: 0, Port: 0}}); err == nil {
		t.Error("vertex 0 accepted")
	}
	if _, err := e.StartPhase([]core.ExtInput{{Vertex: 1, Port: -1}}); err == nil {
		t.Error("negative port accepted")
	}
	e.Start()
	if _, err := e.StartPhase(nil); err != nil {
		t.Errorf("valid StartPhase: %v", err)
	}
	e.Stop()
	if _, err := e.StartPhase(nil); err == nil {
		t.Error("StartPhase after Stop accepted")
	}
}

func TestSingleVertex(t *testing.T) {
	ng, _ := graph.New().Number()
	_ = ng
	g := graph.New()
	g.AddVertex("solo")
	n, _ := g.Number()
	mods, recs := buildRecorded(n, func(v int) core.Module { return &srcEvery{seed: 7} })
	st := runEngine(t, n, mods, core.Config{Workers: 2}, make([][]core.ExtInput, 5))
	if st.Executions != 5 {
		t.Errorf("executions = %d, want 5", st.Executions)
	}
	if st.PhasesCompleted != 5 {
		t.Errorf("phases = %d, want 5", st.PhasesCompleted)
	}
	if len(recs[0].log) != 5 {
		t.Errorf("solo vertex executed %d times", len(recs[0].log))
	}
	for i, e := range recs[0].log {
		if e.phase != i+1 {
			t.Errorf("execution %d at phase %d", i, e.phase)
		}
	}
}

func TestDiamondPropagation(t *testing.T) {
	ng, _ := graph.Diamond().Number()
	mods, recs := buildRecorded(ng, func(v int) core.Module {
		if ng.IsSource(v) {
			return &srcEvery{seed: 3}
		}
		return &hashMod{seed: uint64(v)}
	})
	st := runEngine(t, ng, mods, core.Config{Workers: 4}, make([][]core.ExtInput, 10))
	// Source fires every phase → everyone executes every phase.
	if st.Executions != 40 {
		t.Errorf("executions = %d, want 40", st.Executions)
	}
	// sink must have received messages on both ports each phase
	sinkLog := recs[3].log
	if len(sinkLog) != 10 {
		t.Fatalf("sink executed %d times, want 10", len(sinkLog))
	}
	for _, e := range sinkLog {
		if len(e.ports) != 2 {
			t.Errorf("phase %d: sink saw %d ports, want 2", e.phase, len(e.ports))
		}
	}
}

func TestExternalInputsReachSource(t *testing.T) {
	ng, _ := graph.Chain(2).Number()
	mods, recs := buildRecorded(ng, func(v int) core.Module {
		if v == 1 {
			return &srcExt{}
		}
		return &hashMod{seed: 9}
	})
	batches := [][]core.ExtInput{
		{{Vertex: 1, Port: 0, Val: event.Int(10)}, {Vertex: 1, Port: 1, Val: event.Int(5)}},
		{}, // nothing external: source executes (phase signal) but stays silent
		{{Vertex: 1, Port: 0, Val: event.Int(7)}},
	}
	runEngine(t, ng, mods, core.Config{Workers: 2}, batches)
	srcLog := recs[0].log
	if len(srcLog) != 3 {
		t.Fatalf("source executed %d times, want 3 (every phase)", len(srcLog))
	}
	if len(srcLog[0].emits) != 1 {
		t.Fatalf("phase 1: source emitted %d", len(srcLog[0].emits))
	}
	if got, _ := srcLog[0].emits[0].Val.AsInt(); got != 15 {
		t.Errorf("phase 1 emission = %d, want 15", got)
	}
	if len(srcLog[1].emits) != 0 {
		t.Errorf("phase 2: source emitted despite no external input")
	}
	// downstream executed only on phases 1 and 3
	relayLog := recs[1].log
	if len(relayLog) != 2 || relayLog[0].phase != 1 || relayLog[1].phase != 3 {
		t.Errorf("relay executed at phases %v, want [1 3]", phasesOf(relayLog))
	}
}

func phasesOf(log []recEntry) []int {
	var ps []int
	for _, e := range log {
		ps = append(ps, e.phase)
	}
	return ps
}

// TestSerializabilityFixedGraphs compares parallel and sequential
// executions, vertex by vertex and phase by phase, on the named example
// topologies.
func TestSerializabilityFixedGraphs(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 20))
	builders := map[string]func() *graph.Graph{
		"chain":    func() *graph.Graph { return graph.Chain(12) },
		"diamond":  graph.Diamond,
		"figure1":  graph.Figure1,
		"figure3":  graph.Figure3,
		"fanoutin": func() *graph.Graph { return graph.FanOutIn(8) },
		"tree":     func() *graph.Graph { return graph.FanInTree(16, 2) },
		"layered":  func() *graph.Graph { return graph.Layered(5, 6, 2, rng) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			ng, err := build().Number()
			if err != nil {
				t.Fatal(err)
			}
			seed := uint64(len(name)) * 0x1234567
			const phases = 60
			batches := make([][]core.ExtInput, phases)

			seqMods, seqRecs := buildRecorded(ng, mixedFactory(ng, seed))
			if _, err := baseline.Sequential(ng, seqMods, batches); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				parMods, parRecs := buildRecorded(ng, mixedFactory(ng, seed))
				runEngine(t, ng, parMods, core.Config{Workers: workers, MaxInFlight: 7}, batches)
				for v := 1; v <= ng.N(); v++ {
					if !sameLogs(seqRecs[v-1].log, parRecs[v-1].log) {
						t.Fatalf("workers=%d vertex %d: parallel log differs from sequential", workers, v)
					}
				}
			}
		})
	}
}

// TestSerializabilityRandomGraphs is the main property test: across many
// random topologies, sparsities and worker counts, every vertex's
// execution log under the parallel engine equals the sequential oracle's.
func TestSerializabilityRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 88))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.IntN(40)
		p := rng.Float64() * 0.25
		var g *graph.Graph
		if trial%2 == 0 {
			g = graph.Random(n, p, rng)
		} else {
			g = graph.RandomConnected(n, p, rng)
		}
		ng, err := g.Number()
		if err != nil {
			t.Fatal(err)
		}
		seed := rng.Uint64()
		phases := 10 + rng.IntN(40)
		batches := make([][]core.ExtInput, phases)
		// sprinkle external inputs on random sources
		for i := range batches {
			for s := 1; s <= ng.Sources(); s++ {
				if rng.IntN(3) == 0 {
					batches[i] = append(batches[i], core.ExtInput{
						Vertex: s, Port: 0, Val: event.Int(int64(rng.IntN(1000))),
					})
				}
			}
		}
		seqMods, seqRecs := buildRecorded(ng, mixedFactory(ng, seed))
		if _, err := baseline.Sequential(ng, seqMods, batches); err != nil {
			t.Fatal(err)
		}
		workers := 1 + rng.IntN(12)
		inFlight := 1 + rng.IntN(10)
		parMods, parRecs := buildRecorded(ng, mixedFactory(ng, seed))
		parMods2 := parMods
		e, err := core.New(ng, parMods2, core.Config{Workers: workers, MaxInFlight: inFlight, CountExecutions: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(batches); err != nil {
			t.Fatal(err)
		}
		for v := 1; v <= ng.N(); v++ {
			if !sameLogs(seqRecs[v-1].log, parRecs[v-1].log) {
				t.Fatalf("trial %d (n=%d workers=%d): vertex %d log mismatch", trial, n, workers, v)
			}
		}
		// exactly-once: every recorded execution has count exactly 1, and
		// counts agree with the recorder logs.
		counts := e.ExecCounts()
		for k, c := range counts {
			if c != 1 {
				t.Fatalf("trial %d: pair (%d,%d) executed %d times", trial, k[0], k[1], c)
			}
		}
		total := 0
		for v := 1; v <= ng.N(); v++ {
			total += len(parRecs[v-1].log)
			for _, entry := range parRecs[v-1].log {
				if counts[[2]int{v, entry.phase}] != 1 {
					t.Fatalf("trial %d: recorded execution (%d,%d) missing from counts", trial, v, entry.phase)
				}
			}
		}
		if total != len(counts) {
			t.Fatalf("trial %d: %d recorded executions but %d counted pairs", trial, total, len(counts))
		}
	}
}

// TestExactlyOnceSourcePairs: sources execute exactly once per phase
// regardless of emission behavior (the phase signal of §3.1.2).
func TestExactlyOnceSourcePairs(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	ng, _ := graph.Layered(3, 4, 2, rng).Number()
	mods, _ := buildRecorded(ng, func(v int) core.Module {
		if ng.IsSource(v) {
			return &srcSparse{seed: uint64(v), num: 1, den: 10} // mostly silent
		}
		return &hashMod{seed: uint64(v)}
	})
	const phases = 50
	e, err := core.New(ng, mods, core.Config{Workers: 6, CountExecutions: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(make([][]core.ExtInput, phases)); err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= ng.Sources(); s++ {
		for p := 1; p <= phases; p++ {
			if c := e.ExecCount(s, p); c != 1 {
				t.Fatalf("source %d phase %d executed %d times", s, p, c)
			}
		}
	}
}

// TestQuiescentPhasesComplete: phases where nothing emits still complete
// (information conveyed by absence of messages).
func TestQuiescentPhasesComplete(t *testing.T) {
	ng, _ := graph.Chain(5).Number()
	mods := make([]core.Module, 5)
	mods[0] = core.StepFunc(func(ctx *core.Context) {}) // silent source
	for i := 1; i < 5; i++ {
		mods[i] = &hashMod{}
	}
	st := runEngine(t, ng, mods, core.Config{Workers: 3}, make([][]core.ExtInput, 20))
	if st.PhasesCompleted != 20 {
		t.Errorf("phases completed = %d, want 20", st.PhasesCompleted)
	}
	if st.Executions != 20 { // only the source's phase signals
		t.Errorf("executions = %d, want 20", st.Executions)
	}
	if st.Messages != 0 {
		t.Errorf("messages = %d, want 0", st.Messages)
	}
}

// TestPipelining: with a deep chain, slow vertices and several workers,
// multiple phases must be in flight concurrently (Figure 1's behavior).
func TestPipelining(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	ng, _ := graph.Chain(8).Number()
	probe := newDepthProbe()
	mods := make([]core.Module, 8)
	for v := 1; v <= 8; v++ {
		if ng.IsSource(v) {
			mods[v-1] = &srcEvery{seed: 1}
		} else {
			mods[v-1] = &spinMod{hashMod: hashMod{seed: uint64(v)}, loops: 200000}
		}
	}
	e, err := core.New(ng, mods, core.Config{Workers: 8, MaxInFlight: 16, Observer: probe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(make([][]core.ExtInput, 40)); err != nil {
		t.Fatal(err)
	}
	if d := probe.MaxDepth(); d < 2 {
		t.Errorf("max concurrent phases = %d, want >= 2 (pipelining)", d)
	}
}

// TestWaitPhaseOrdering: WaitPhase(p) returns only after phases 1..p all
// completed; phase completion is monotone.
func TestWaitPhaseOrdering(t *testing.T) {
	ng, _ := graph.Chain(4).Number()
	completed := make(chan int, 100)
	obs := phaseObserver{completed: completed}
	mods := make([]core.Module, 4)
	mods[0] = &srcEvery{seed: 2}
	for i := 1; i < 4; i++ {
		mods[i] = &hashMod{seed: uint64(i)}
	}
	e, err := core.New(ng, mods, core.Config{Workers: 4, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for i := 0; i < 10; i++ {
		if _, err := e.StartPhase(nil); err != nil {
			t.Fatal(err)
		}
	}
	e.WaitPhase(5)
	e.Stop()
	close(completed)
	prev := 0
	for p := range completed {
		if p != prev+1 {
			t.Fatalf("phase %d completed after %d", p, prev)
		}
		prev = p
	}
	if prev != 10 {
		t.Errorf("last completed phase = %d, want 10", prev)
	}
}

type phaseObserver struct{ completed chan int }

func (o phaseObserver) PhaseStarted(p int)            {}
func (o phaseObserver) PairEnqueued(v, p int)         {}
func (o phaseObserver) ExecBegin(v, p int)            {}
func (o phaseObserver) ExecEnd(v, p int, emitted int) {}
func (o phaseObserver) PhaseCompleted(p int)          { o.completed <- p }

// TestWorkerPanicPropagates: a panicking module surfaces in Stop/Drain
// rather than deadlocking.
func TestWorkerPanicPropagates(t *testing.T) {
	ng, _ := graph.Chain(2).Number()
	mods := []core.Module{
		core.StepFunc(func(ctx *core.Context) { panic("module exploded") }),
		&hashMod{},
	}
	e, err := core.New(ng, mods, core.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic propagated")
		}
		if !strings.Contains(r.(string), "module exploded") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e.Start()
	_, _ = e.StartPhase(nil)
	e.Drain()
}

// TestStopIdempotent: calling Stop twice must not hang or panic.
func TestStopIdempotent(t *testing.T) {
	ng, _ := graph.Chain(2).Number()
	mods := []core.Module{&srcEvery{seed: 1}, &hashMod{}}
	e, _ := core.New(ng, mods, core.Config{Workers: 2})
	e.Start()
	_, _ = e.StartPhase(nil)
	e.Stop()
	e.Stop()
}

// TestStatsAccounting: messages and executions match what the recorders
// saw; queue high-water mark is sane.
func TestStatsAccounting(t *testing.T) {
	ng, _ := graph.FanOutIn(6).Number()
	mods, recs := buildRecorded(ng, func(v int) core.Module {
		if ng.IsSource(v) {
			return &srcEvery{seed: 4}
		}
		return &hashMod{seed: uint64(v)}
	})
	st := runEngine(t, ng, mods, core.Config{Workers: 4}, make([][]core.ExtInput, 25))
	var execs, msgs int64
	for _, r := range recs {
		execs += int64(len(r.log))
		for _, e := range r.log {
			msgs += int64(len(e.emits))
		}
	}
	// every emission lands on exactly one edge here (EmitAll over
	// distinct out edges)
	var expectedMsgs int64
	for _, r := range recs {
		for _, e := range r.log {
			expectedMsgs += int64(len(e.emits))
		}
	}
	_ = msgs
	if st.Executions != execs {
		t.Errorf("Stats.Executions = %d, recorders saw %d", st.Executions, execs)
	}
	if st.Messages != expectedMsgs {
		t.Errorf("Stats.Messages = %d, recorders emitted %d", st.Messages, expectedMsgs)
	}
	if st.MaxQueueLen < 1 {
		t.Errorf("MaxQueueLen = %d", st.MaxQueueLen)
	}
	if st.PhasesCompleted != 25 {
		t.Errorf("PhasesCompleted = %d", st.PhasesCompleted)
	}
}

// TestContentionMeasurement: with MeasureContention on, lock and exec
// timing counters populate.
func TestContentionMeasurement(t *testing.T) {
	ng, _ := graph.Chain(4).Number()
	mods := make([]core.Module, 4)
	mods[0] = &srcEvery{seed: 9}
	for i := 1; i < 4; i++ {
		mods[i] = &spinMod{hashMod: hashMod{seed: uint64(i)}, loops: 10000}
	}
	e, _ := core.New(ng, mods, core.Config{Workers: 4, MeasureContention: true})
	if _, err := e.Run(make([][]core.ExtInput, 30)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.LockAcquisitions == 0 {
		t.Error("no lock acquisitions recorded")
	}
	if st.ExecTime == 0 {
		t.Error("no exec time recorded")
	}
}

// TestMaxInFlightRespected: with MaxInFlight=1, phase p+1 never starts
// before phase p completes, so depth probe sees at most 1 phase.
func TestMaxInFlightRespected(t *testing.T) {
	ng, _ := graph.Chain(5).Number()
	probe := newDepthProbe()
	mods := make([]core.Module, 5)
	mods[0] = &srcEvery{seed: 3}
	for i := 1; i < 5; i++ {
		mods[i] = &hashMod{seed: uint64(i)}
	}
	e, _ := core.New(ng, mods, core.Config{Workers: 8, MaxInFlight: 1, Observer: probe})
	if _, err := e.Run(make([][]core.ExtInput, 30)); err != nil {
		t.Fatal(err)
	}
	if d := probe.MaxDepth(); d != 1 {
		t.Errorf("max depth = %d with MaxInFlight=1, want 1", d)
	}
}

// TestManyPhasesStress drives a moderate graph through many phases with
// high worker counts as a liveness smoke test.
func TestManyPhasesStress(t *testing.T) {
	phases := 2000
	if testing.Short() {
		phases = 200
	}
	rng := rand.New(rand.NewPCG(1, 9))
	ng, _ := graph.Layered(6, 8, 3, rng).Number()
	mods, _ := buildRecorded(ng, mixedFactory(ng, 0xabcdef))
	st := runEngine(t, ng, mods, core.Config{Workers: 16, MaxInFlight: 32}, make([][]core.ExtInput, phases))
	if st.PhasesCompleted != int64(phases) {
		t.Errorf("completed %d of %d phases", st.PhasesCompleted, phases)
	}
}
