package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/graph"
)

// TestRingGrowsUnderPhaseBurst opens far more phases than the engine's
// initial ring capacity before executing anything: Run paces phase
// starts by MaxInFlight, but explicit StartPhase is unbounded, so the
// phase ring must grow (re-slotting the open window) rather than
// collide. Every phase must then drain to completion with the usual
// exactly-once accounting.
func TestRingGrowsUnderPhaseBurst(t *testing.T) {
	const phases = 100 // initial ring capacity is 8 when MaxInFlight=1
	ng, err := graph.Chain(4).Number()
	if err != nil {
		t.Fatal(err)
	}
	relay := core.StepFunc(func(ctx *core.Context) {
		if v, ok := ctx.FirstIn(); ok {
			ctx.EmitAll(v)
		}
	})
	src := core.StepFunc(func(ctx *core.Context) {
		ctx.EmitAll(event.Int(int64(ctx.Phase())))
	})
	mods := []core.Module{src, relay, relay, relay}
	eng, err := core.New(ng, mods, core.Config{Manual: true, MaxInFlight: 1, CountExecutions: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	for p := 1; p <= phases; p++ {
		if _, err := eng.StartPhase(nil); err != nil {
			t.Fatal(err)
		}
	}
	for eng.StepOne() {
	}
	st := eng.Stats()
	if st.PhasesCompleted != phases {
		t.Fatalf("completed %d of %d phases", st.PhasesCompleted, phases)
	}
	if want := int64(phases * ng.N()); st.Executions != want {
		t.Errorf("executions = %d, want %d", st.Executions, want)
	}
	for p := 1; p <= phases; p += 17 {
		for v := 1; v <= ng.N(); v++ {
			if n := eng.ExecCount(v, p); n != 1 {
				t.Errorf("pair (%d,%d) executed %d times", v, p, n)
			}
		}
	}
}
