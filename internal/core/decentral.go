// Decentralized commit path (DESIGN.md §14).
//
// The locked path in engine.go serializes every finish() — delivery,
// full/ready bookkeeping, frontier sweep, completion check — through
// the engine-wide mutex, which E8 shows costs ~60% of worker time at
// zero grain. This file is the steady-state replacement: an engine
// built without Manual mode and without an Observer routes execute()
// through finishFast, and no global lock is taken between a pair being
// dequeued and the moment its phase commits.
//
// The frontier sweep (statements 1.12–1.26) is replaced by per-vertex
// *resolution* counting. Vertex v "resolves" phase p when its part in p
// is over: it executed (v, p), or p is provably input-free for v.
// Resolutions per vertex are strictly ordered by a per-vertex `resolved`
// pointer. Each (vertex, phase) pair carries a countdown slot
// (vslot.unresolved, armed to the in-degree): when predecessor u
// resolves p it decrements successor slots for p — under the successor's
// lock, while still holding u's lock, so per-edge notifications arrive
// in resolution order. A slot hitting zero with buffered input is
// exactly the Listing-1 "full" transition (every predecessor has had its
// say); zero with no input means the pair can never receive a message
// and is skip-resolved in turn once it becomes v's next unresolved
// phase (advanceLocked). Phase commit is an atomic per-phase counter of
// unresolved vertices: the last resolution drops it to zero, and only
// then does the committer take the engine mutex — once per phase, not
// per execution — to close the phase, advance `done`, and wake
// WaitPhase/Drain sleepers.
//
// Lock hierarchy (deadlock freedom):
//
//	e.mu  ≺  vertex locks in ascending vertex order  ≺  run-queue shards
//
// StartPhase acquires e.mu then one source lock at a time. The finish
// path acquires vertex locks only in ascending index order (a vertex
// locks itself, then notifies successors, which the restricted
// numbering guarantees have larger indices; skip cascades recurse
// strictly upward). Commit-counter decrements are deferred to
// flushCommits, after every vertex lock is released, so the committer
// never wants e.mu while holding a vertex lock.
//
// Input slices never touch a shared pool on this path: the snapshot a
// workItem carries is returned to the very (vertex, phase-ring) slot it
// was taken from when the pair finishes, so slice capacity stays with
// the slot and steady-state execution is allocation- and
// contention-free (TestFastPathSteadyStateAllocs pins this).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// phaseRing is the window of open phases, readable without the engine
// mutex: slot p&mask holds phase p's state while p is open. The ring is
// grown and its slots installed/cleared only under e.mu; readers load
// the current ring and slot atomically. A reader holding a stale ring
// can only ever observe a pointer whose pnum it then checks, and a
// state's pnum changes only between close (published nil) and the next
// reuse, which the commit-counter protocol orders after every reader's
// last access — so a stale lookup misses (returns nil) rather than
// aliasing a recycled phase.
type phaseRing struct {
	slots []atomic.Pointer[phaseState]
	mask  int
}

// vslot is one vertex's input slot within one open phase on the
// decentralized path. Both fields are guarded by the owning vertex's
// lock (not the engine mutex).
type vslot struct {
	// in buffers the messages delivered to (v, p) until the pair becomes
	// ready, at which point the slice moves into the workItem and is
	// returned to this slot — cleared, capacity retained — when the pair
	// finishes.
	in []portValue
	// unresolved counts predecessors that have not yet resolved this
	// phase; armed to the in-degree when the slot's previous occupant
	// resolved. Zero with input pending means full; zero with no input
	// means the pair is skippable.
	unresolved int32
}

// workerScratch is per-worker bookkeeping that must not contend: the
// deferred commit-decrement list and the delivered-message counter
// (merged by Stats). Padded so neighboring workers' counters do not
// false-share.
type workerScratch struct {
	commits []*phaseState
	msgs    int64
	_       [88]byte
}

// execShard is one shard of the CountExecutions map: workers update
// their own shard under a leaf mutex and ExecCount/ExecCounts merge.
type execShard struct {
	mu sync.Mutex
	m  map[[2]int]int
	_  [40]byte
}

// scratchFor returns the scratch slot for a run-queue shard hint; -1
// (environment thread, manual stepping) maps to the extra trailing slot.
func (e *Engine) scratchFor(shard int) *workerScratch {
	if shard < 0 {
		return &e.wstate[len(e.wstate)-1]
	}
	return &e.wstate[shard]
}

// execShardFor returns the CountExecutions shard for a run-queue shard
// hint (same mapping as scratchFor).
func (e *Engine) execShardFor(shard int) *execShard {
	if shard < 0 {
		return &e.execShards[len(e.execShards)-1]
	}
	return &e.execShards[shard]
}

// lockVertex acquires a vertex lock, folding contended acquisitions
// into the same Stats counters as the engine mutex when
// MeasureContention is on. The uncontended path records the
// acquisition but skips the clock: TryLock succeeding means the wait
// was zero.
func (e *Engine) lockVertex(vt *vertexState) {
	if !e.cfg.MeasureContention {
		vt.mu.Lock()
		return
	}
	e.lockAcq.Add(1)
	if vt.mu.TryLock() {
		return
	}
	t0 := time.Now()
	vt.mu.Lock()
	e.lockWait.Add(int64(time.Since(t0)))
}

// newFastState allocates a decentralized-path phase state with every
// slot armed to its vertex's in-degree. Pooled states come back from
// closePhase already re-armed by the resolution protocol, so this runs
// only while the phase window is still growing.
func (e *Engine) newFastState() *phaseState {
	ps := &phaseState{slots: make([]vslot, e.g.N())}
	for i := range ps.slots {
		ps.slots[i].unresolved = int32(e.g.InDegree(i + 1))
	}
	return ps
}

// startPhaseFast performs StartPhase's source work on the decentralized
// path: deliver the external observations, then mark every source full
// for phase p (statements 2.12–2.19). Caller holds e.mu; vertex locks
// are taken one at a time underneath it, per the lock hierarchy.
func (e *Engine) startPhaseFast(p int, ps *phaseState, ext []ExtInput) {
	for _, x := range ext {
		vt := &e.vs[x.Vertex-1]
		e.lockVertex(vt)
		slot := &ps.slots[x.Vertex-1]
		slot.in = append(slot.in, portValue{port: x.Port, val: x.Val})
		vt.mu.Unlock()
	}
	for s := 1; s <= e.g.Sources(); s++ {
		vt := &e.vs[s-1]
		e.lockVertex(vt)
		if n := len(vt.fullPhases); n > 0 && vt.fullPhases[n-1] >= p {
			panic(fmt.Sprintf("core: full phases out of order at vertex %d: %v then %d", s, vt.fullPhases, p))
		}
		vt.fullPhases = append(vt.fullPhases, p)
		if !vt.inReady && vt.fullPhases[0] == p {
			// The environment thread enqueues round-robin across shards.
			e.makeReadyFast(s, vt, p, ps, -1)
		}
		vt.mu.Unlock()
	}
}

// makeReadyFast moves (v, p) — v's minimum full phase — into the ready
// set: the slot's input buffer becomes the pair's snapshot and the pair
// is enqueued. Caller holds v's lock.
func (e *Engine) makeReadyFast(v int, vt *vertexState, p int, ps *phaseState, shard int) {
	if vt.resolved != p-1 {
		panic(fmt.Sprintf("core: (%d,%d) ready out of order (resolved through %d)", v, p, vt.resolved))
	}
	vt.inReady = true
	slot := &ps.slots[v-1]
	in := slot.in
	slot.in = nil
	e.q.Enqueue(shard, workItem{v: v, p: p, in: in})
}

// finishFast is the decentralized finish(): bookkeeping after (v, p)
// executed with the given emissions, touching only v's lock, the
// successors' locks (ascending), and — at most once per *phase*, not
// per execution — the engine mutex inside commitPhases.
func (e *Engine) finishFast(v, p int, emits []Emission, in []portValue, shard int) {
	ws := e.scratchFor(shard)
	ps := e.phaseAt(p)
	if ps == nil {
		panic(fmt.Sprintf("core: finish(%d,%d) for closed phase", v, p))
	}
	if len(emits) > 0 {
		atomic.AddInt64(&ws.msgs, int64(len(emits)))
	}
	vt := &e.vs[v-1]
	e.lockVertex(vt)
	if !vt.inReady || len(vt.fullPhases) == 0 || vt.fullPhases[0] != p || vt.resolved != p-1 {
		panic(fmt.Sprintf("core: ready bookkeeping corrupt at (%d,%d)", v, p))
	}
	vt.inReady = false
	vt.fullPhases = vt.fullPhases[:copy(vt.fullPhases, vt.fullPhases[1:])]
	// Return the consumed snapshot to the slot it came from and re-arm
	// the slot for the ring position's next phase.
	slot := &ps.slots[v-1]
	if in != nil {
		clear(in)
		slot.in = in[:0]
	}
	slot.unresolved = int32(e.g.InDegree(v))
	vt.resolved = p
	ws.commits = append(ws.commits, ps)
	e.notifyLocked(v, p, ps, emits, shard, ws)
	e.advanceLocked(v, vt, shard, ws)
	vt.mu.Unlock()
	e.flushCommits(ws)
}

// notifyLocked tells every successor of v that v has resolved phase p,
// delivering v's emissions along the way. Caller holds v's lock (and
// possibly those of a descending chain of v's ancestors); successor
// locks nest strictly upward in vertex order, so the hierarchy holds.
// Decrementing under v's lock is what keeps per-edge notifications in
// per-vertex resolution order — the invariant that makes successor
// slots hit zero in increasing phase order.
func (e *Engine) notifyLocked(v, p int, ps *phaseState, emits []Emission, shard int, ws *workerScratch) {
	succ := e.g.Succ(v)
	if len(succ) == 0 {
		return
	}
	ports := e.ports[v-1]
	for si, w := range succ {
		wt := &e.vs[w-1]
		e.lockVertex(wt)
		slot := &ps.slots[w-1]
		if slot.unresolved <= 0 {
			panic(fmt.Sprintf("core: notification for (%d,%d) after it resolved", w, p))
		}
		for i := range emits {
			if emits[i].Out == si {
				slot.in = append(slot.in, portValue{port: ports[si], val: emits[i].Val})
			}
		}
		slot.unresolved--
		if slot.unresolved == 0 {
			if len(slot.in) > 0 {
				// Full transition: every predecessor has resolved p and at
				// least one sent a message (statements 1.24–1.26).
				if n := len(wt.fullPhases); n > 0 && wt.fullPhases[n-1] >= p {
					panic(fmt.Sprintf("core: full phases out of order at vertex %d: %v then %d", w, wt.fullPhases, p))
				}
				wt.fullPhases = append(wt.fullPhases, p)
				if !wt.inReady && wt.fullPhases[0] == p {
					e.makeReadyFast(w, wt, p, ps, shard)
				}
			} else {
				// No input and none can arrive: skippable, once w's earlier
				// phases are resolved. advanceLocked checks exactly that.
				e.advanceLocked(w, wt, shard, ws)
			}
		}
		wt.mu.Unlock()
	}
}

// advanceLocked resolves v's consecutive pending phases: each next
// phase that is full becomes ready (and the loop stops — finishing it
// will advance further); each next phase whose slot hit zero without
// input is skip-resolved, notifying successors in turn. Caller holds
// v's lock. The loop stops at the first phase still awaiting
// predecessors or not yet started — some later event (a predecessor's
// notification, or v's own finish) re-runs it with fresh state.
func (e *Engine) advanceLocked(v int, vt *vertexState, shard int, ws *workerScratch) {
	indeg := int32(e.g.InDegree(v))
	for !vt.inReady {
		q := vt.resolved + 1
		if len(vt.fullPhases) > 0 && vt.fullPhases[0] == q {
			ps := e.phaseAt(q)
			if ps == nil {
				panic(fmt.Sprintf("core: full pair (%d,%d) in a closed phase", v, q))
			}
			e.makeReadyFast(v, vt, q, ps, shard)
			return
		}
		if indeg == 0 {
			// Sources execute every started phase; StartPhase makes them
			// full, so there is never anything to skip.
			return
		}
		ps := e.phaseAt(q)
		if ps == nil {
			return // phase q not started yet
		}
		slot := &ps.slots[v-1]
		if slot.unresolved != 0 || len(slot.in) > 0 {
			return // still awaiting predecessors
		}
		// (v, q) got no message and every predecessor has resolved q:
		// skip-resolve, re-arming the slot for its next phase.
		slot.unresolved = indeg
		vt.resolved = q
		ws.commits = append(ws.commits, ps)
		e.notifyLocked(v, q, ps, nil, shard, ws)
	}
}

// flushCommits applies the deferred commit-counter decrements — one per
// resolution performed while vertex locks were held — and commits any
// phase whose counter reaches zero. Must be called with no vertex locks
// held: commitPhases takes e.mu, which sits above vertex locks in the
// hierarchy.
func (e *Engine) flushCommits(ws *workerScratch) {
	for i, ps := range ws.commits {
		ws.commits[i] = nil
		if ps.unresolvedVerts.Add(-1) == 0 {
			e.commitPhases()
		}
	}
	ws.commits = ws.commits[:0]
}

// commitPhases advances the completed-phase prefix under the engine
// mutex: phases commit in order, each zeroed counter past `done`
// closing its phase and waking WaitPhase/Drain sleepers. Safe to call
// from any worker whose decrement zeroed a counter; the scan is
// idempotent under the lock.
func (e *Engine) commitPhases() {
	e.lock()
	advanced := false
	for {
		ps := e.phaseAt(e.done + 1)
		if ps == nil || ps.unresolvedVerts.Load() != 0 {
			break
		}
		e.closePhase(ps)
		e.done++
		advanced = true
		if obs := e.cfg.Observer; obs != nil {
			obs.PhaseCompleted(e.done)
		}
	}
	if advanced {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}
