package core

import "math/bits"

// bitset is a fixed-capacity set of vertex indices 1..n used to represent
// the per-phase partial and full sets. The hot operations during the
// bookkeeping of Listing 1 are single-bit set/clear, minimum-element scan
// (for the v_min computation of statement 1.15) and ranged iteration (for
// the newly-full migration of statement 1.24); all are O(n/64) or better.
//
// Index 0 is never stored; bit i corresponds to vertex i.
type bitset struct {
	words []uint64
	count int
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+64)/64)}
}

// set inserts v, reporting whether it was newly inserted.
func (b *bitset) set(v int) bool {
	w, m := v>>6, uint64(1)<<(uint(v)&63)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// clear removes v, reporting whether it was present.
func (b *bitset) clear(v int) bool {
	w, m := v>>6, uint64(1)<<(uint(v)&63)
	if b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.count--
	return true
}

// test reports whether v is present.
func (b *bitset) test(v int) bool {
	return b.words[v>>6]&(uint64(1)<<(uint(v)&63)) != 0
}

// len returns the number of elements.
func (b *bitset) len() int { return b.count }

// min returns the smallest element, or 0 when the set is empty.
func (b *bitset) min() int {
	for w, word := range b.words {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return 0
}

// forRange calls fn for every element v with lo < v <= hi, in ascending
// order. fn must not mutate the set.
func (b *bitset) forRange(lo, hi int, fn func(v int)) {
	if hi <= lo {
		return
	}
	start := lo + 1
	for w := start >> 6; w < len(b.words) && w<<6 <= hi; w++ {
		word := b.words[w]
		if word == 0 {
			continue
		}
		if w == start>>6 {
			word &= ^uint64(0) << (uint(start) & 63)
		}
		for word != 0 {
			v := w<<6 + bits.TrailingZeros64(word)
			if v > hi {
				return
			}
			fn(v)
			word &= word - 1
		}
	}
}

// drainRange is forRange but also removes the visited elements; fn may
// mutate other state freely (including this set outside the range). The
// visited elements are staged in scratch, whose (possibly grown) backing
// array is returned for reuse so repeated drains do not allocate.
func (b *bitset) drainRange(lo, hi int, scratch []int, fn func(v int)) []int {
	if hi <= lo {
		return scratch
	}
	scratch = scratch[:0]
	b.forRange(lo, hi, func(v int) { scratch = append(scratch, v) })
	for _, v := range scratch {
		b.clear(v)
		fn(v)
	}
	return scratch
}
