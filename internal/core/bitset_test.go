package core

import (
	"math/rand/v2"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := newBitset(200)
	if b.len() != 0 || b.min() != 0 {
		t.Fatalf("empty: len=%d min=%d", b.len(), b.min())
	}
	if !b.set(5) || !b.set(130) || !b.set(64) {
		t.Fatal("fresh set returned false")
	}
	if b.set(5) {
		t.Error("duplicate set returned true")
	}
	if b.len() != 3 {
		t.Errorf("len = %d, want 3", b.len())
	}
	if !b.test(130) || b.test(131) {
		t.Error("test wrong")
	}
	if b.min() != 5 {
		t.Errorf("min = %d, want 5", b.min())
	}
	if !b.clear(5) {
		t.Error("clear present returned false")
	}
	if b.clear(5) {
		t.Error("clear absent returned true")
	}
	if b.min() != 64 {
		t.Errorf("min after clear = %d, want 64", b.min())
	}
}

func TestBitsetBoundary(t *testing.T) {
	// exercise word boundaries 63/64/127/128
	b := newBitset(256)
	for _, v := range []int{1, 63, 64, 127, 128, 255, 256} {
		if !b.set(v) {
			t.Fatalf("set(%d) failed", v)
		}
		if !b.test(v) {
			t.Fatalf("test(%d) false after set", v)
		}
	}
	if b.min() != 1 {
		t.Errorf("min = %d", b.min())
	}
	b.clear(1)
	if b.min() != 63 {
		t.Errorf("min = %d, want 63", b.min())
	}
}

func TestBitsetForRange(t *testing.T) {
	b := newBitset(300)
	for _, v := range []int{3, 64, 65, 128, 200, 299} {
		b.set(v)
	}
	var got []int
	b.forRange(3, 200, func(v int) { got = append(got, v) })
	want := []int{64, 65, 128, 200}
	if len(got) != len(want) {
		t.Fatalf("forRange(3,200) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forRange(3,200) = %v, want %v", got, want)
		}
	}
	got = nil
	b.forRange(0, 2, func(v int) { got = append(got, v) })
	if len(got) != 0 {
		t.Errorf("forRange(0,2) = %v, want empty", got)
	}
	got = nil
	b.forRange(5, 5, func(v int) { got = append(got, v) })
	if len(got) != 0 {
		t.Errorf("forRange(5,5) = %v, want empty", got)
	}
}

func TestBitsetDrainRange(t *testing.T) {
	b := newBitset(100)
	for v := 1; v <= 100; v++ {
		b.set(v)
	}
	var got []int
	b.drainRange(10, 20, nil, func(v int) { got = append(got, v) })
	if len(got) != 10 {
		t.Fatalf("drained %d, want 10: %v", len(got), got)
	}
	for _, v := range got {
		if v <= 10 || v > 20 || b.test(v) {
			t.Errorf("bad drained element %d", v)
		}
	}
	if b.len() != 90 {
		t.Errorf("len = %d, want 90", b.len())
	}
}

func TestBitsetRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 500
	b := newBitset(n)
	ref := map[int]bool{}
	for op := 0; op < 20000; op++ {
		v := 1 + rng.IntN(n)
		switch rng.IntN(3) {
		case 0:
			if b.set(v) == ref[v] {
				t.Fatalf("set(%d) disagreement", v)
			}
			ref[v] = true
		case 1:
			if b.clear(v) != ref[v] {
				t.Fatalf("clear(%d) disagreement", v)
			}
			delete(ref, v)
		case 2:
			if b.test(v) != ref[v] {
				t.Fatalf("test(%d) disagreement", v)
			}
		}
	}
	if b.len() != len(ref) {
		t.Fatalf("len = %d, ref = %d", b.len(), len(ref))
	}
	min := 0
	for v := range ref {
		if min == 0 || v < min {
			min = v
		}
	}
	if b.min() != min {
		t.Fatalf("min = %d, ref = %d", b.min(), min)
	}
}
