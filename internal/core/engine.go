// Package core implements the paper's parallel algorithm for executing
// serializable Δ-dataflow computation graphs on a shared-memory
// multiprocessor (§3 of the paper).
//
// The engine maintains, under a single global lock exactly as in
// Listings 1 and 2:
//
//   - per-phase partial and full sets (equations 7 and 9) as bitsets of
//     vertex indices,
//   - the implicit ready set (equation 8), realized as a per-vertex
//     "minimum full phase" rule plus a blocking run queue,
//   - the per-phase frontier x_p — the highest index such that all
//     vertices indexed ≤ x_p have finished phase p, clamped by x_{p-1}
//     so later phases never overtake earlier ones,
//   - pmax, the newest started phase.
//
// Worker goroutines play the computation processes of Listing 1: dequeue
// a ready (vertex, phase) pair, execute the module outside the lock,
// then update the data structures inside it. StartPhase plays one
// iteration of the environment process of Listing 2.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/graph"
	"repro/internal/runqueue"
)

// Observer receives engine lifecycle callbacks. PhaseStarted,
// PairEnqueued and PhaseCompleted are invoked while the engine lock is
// held: implementations must be fast and must not call back into the
// engine. ExecBegin and ExecEnd are invoked outside the lock on worker
// goroutines and may run concurrently with each other.
type Observer interface {
	PhaseStarted(p int)
	PairEnqueued(v, p int)
	ExecBegin(v, p int)
	ExecEnd(v, p int, emitted int)
	PhaseCompleted(p int)
}

// SetObserver receives fine-grained set-transition callbacks mirroring
// the partial/full/ready set manipulations of Listings 1 and 2. An
// Observer that also implements SetObserver (detected once at New) gets
// these calls while the engine lock is held; implementations must be
// fast and must not call back into the engine. Used by the trace
// recorder that reproduces Figure 3.
type SetObserver interface {
	// PairPartial fires when (v, p) enters the partial set.
	PairPartial(v, p int)
	// PairFull fires when (v, p) enters the full set (directly, for
	// sources, or by migration from partial).
	PairFull(v, p int)
	// PairReady fires when (v, p) enters the ready set.
	PairReady(v, p int)
	// PairDone fires when (v, p) is removed from the full and ready sets
	// after executing.
	PairDone(v, p int)
	// FrontierMoved fires when x_p changes to x.
	FrontierMoved(p, x int)
}

// Config tunes an Engine.
type Config struct {
	// Workers is the number of computation goroutines (the paper's pool
	// of computation threads). Defaults to 1.
	Workers int
	// MaxInFlight bounds how many phases may be open concurrently during
	// Run: phase p is not started until phase p-MaxInFlight has
	// completed. This models the environment process pacing phase starts
	// on external data arrival, and keeps the frontier window small.
	// Defaults to 64. It does not limit explicit StartPhase calls.
	MaxInFlight int
	// Observer, when non-nil, receives lifecycle callbacks.
	Observer Observer
	// CountExecutions records how many times each (vertex, phase) pair
	// executes, for the exactly-once tests. Costs one map update per
	// execution; leave off in benchmarks.
	CountExecutions bool
	// MeasureContention records time spent waiting for the global lock
	// and time spent inside module Steps (experiment E8).
	MeasureContention bool
	// Manual disables the worker pool: no goroutines are spawned and the
	// caller drives execution with StepOne/StepPair. Used by traces and
	// debugging tools that need a deterministic, chosen interleaving.
	Manual bool
}

// ExtInput is one external observation delivered to a source vertex at
// the start of a phase (the paper's sensor events).
type ExtInput struct {
	// Vertex is the 1-based index of a source vertex.
	Vertex int
	// Port is the input port the observation arrives on; sources
	// conventionally use port 0 but may expose several external ports.
	Port int
	// Val is the payload.
	Val event.Value
}

// workItem is one run-queue entry: a ready (vertex, phase) pair together
// with the complete snapshot of inputs it is entitled to.
type workItem struct {
	v, p int
	in   []portValue
}

// portValue is one received input message.
type portValue struct {
	port int
	val  event.Value
}

// phaseState is the engine's record of one open phase.
type phaseState struct {
	// x is the frontier x_p of §3.1.2.
	x int
	// partial and full are the sets of equations (9) and (7), restricted
	// to this phase.
	partial *bitset
	full    *bitset
	// inbox buffers messages delivered for this phase, keyed by
	// destination vertex, until the pair becomes ready.
	inbox map[int][]portValue
}

func (ps *phaseState) pending() int { return ps.partial.count + ps.full.count }

func (ps *phaseState) minPending() int {
	mp, mf := ps.partial.min(), ps.full.min()
	if mp == 0 {
		return mf
	}
	if mf == 0 || mp < mf {
		return mp
	}
	return mf
}

// vertexState tracks the ready-set bookkeeping for one vertex.
type vertexState struct {
	// inReady is true while some (v, p) sits in the ready set (i.e. in
	// the run queue or executing). At most one phase per vertex may be
	// ready at a time, and it is always the minimum full phase.
	inReady bool
	// fullPhases lists the phases p with (v, p) in the full set,
	// ascending. Entries are appended in strictly increasing order (see
	// the invariant argument in finish) and removed from the front.
	fullPhases []int
}

// Stats is a snapshot of engine counters.
type Stats struct {
	// Executions is the number of (vertex, phase) pairs executed.
	Executions int64
	// Messages is the number of inter-vertex messages delivered.
	Messages int64
	// PhasesCompleted is the number of phases fully executed.
	PhasesCompleted int64
	// MaxQueueLen is the run queue's high-water mark.
	MaxQueueLen int
	// LockWait is the cumulative time workers and the environment spent
	// acquiring the global lock (only when MeasureContention).
	LockWait time.Duration
	// LockAcquisitions counts lock acquisitions (only when MeasureContention).
	LockAcquisitions int64
	// ExecTime is cumulative wall time inside module Steps (only when
	// MeasureContention).
	ExecTime time.Duration
}

// Engine executes a numbered computation graph with the paper's parallel
// algorithm.
type Engine struct {
	g      *graph.Numbered
	mods   []Module
	cfg    Config
	setObs SetObserver // non-nil when cfg.Observer also observes sets
	q      *runqueue.Queue[workItem]

	workers sync.WaitGroup
	started bool
	stopped bool

	mu   sync.Mutex
	cond sync.Cond // broadcast whenever a phase completes

	phases map[int]*phaseState
	pmax   int // newest started phase
	done   int // all phases ≤ done are complete

	vs []vertexState

	// counters
	execs    atomic.Int64
	msgs     int64 // under mu
	lockWait atomic.Int64
	lockAcq  atomic.Int64
	execTime atomic.Int64

	// execCount, when CountExecutions, maps (v,p) to times executed.
	execCount map[[2]int]int

	panicOnce sync.Once
	panicked  atomic.Value // first worker panic, re-raised by Drain/Stop
}

// New builds an engine over a numbered graph. mods[v-1] is the module
// for vertex v; every vertex must have a module. The graph must have at
// least one vertex (and hence, being a DAG, at least one source).
func New(g *graph.Numbered, mods []Module, cfg Config) (*Engine, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if len(mods) != g.N() {
		return nil, fmt.Errorf("core: %d modules for %d vertices", len(mods), g.N())
	}
	for i, m := range mods {
		if m == nil {
			return nil, fmt.Errorf("core: vertex %d has nil module", i+1)
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	e := &Engine{
		g:      g,
		mods:   mods,
		cfg:    cfg,
		q:      runqueue.New[workItem](256),
		phases: make(map[int]*phaseState),
		vs:     make([]vertexState, g.N()),
	}
	e.cond.L = &e.mu
	if so, ok := cfg.Observer.(SetObserver); ok {
		e.setObs = so
	}
	if cfg.CountExecutions {
		e.execCount = make(map[[2]int]int)
	}
	return e, nil
}

// Graph returns the engine's numbered graph.
func (e *Engine) Graph() *graph.Numbered { return e.g }

// lock acquires the global lock, recording wait time when configured.
func (e *Engine) lock() {
	if e.cfg.MeasureContention {
		t0 := time.Now()
		e.mu.Lock()
		e.lockWait.Add(int64(time.Since(t0)))
		e.lockAcq.Add(1)
		return
	}
	e.mu.Lock()
}

// Start launches the worker pool. It may be called before or after the
// first StartPhase; items enqueued earlier are picked up on start.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	if e.cfg.Manual {
		return
	}
	for i := 0; i < e.cfg.Workers; i++ {
		e.workers.Add(1)
		go e.worker()
	}
}

// StartPhase opens the next phase, delivering the given external
// observations to source vertices, and returns the phase number. It is
// one iteration of the environment process of Listing 2: every source
// vertex receives its phase signal and joins the full set.
func (e *Engine) StartPhase(ext []ExtInput) (int, error) {
	for _, x := range ext {
		if x.Vertex < 1 || x.Vertex > e.g.N() || !e.g.IsSource(x.Vertex) {
			return 0, fmt.Errorf("core: external input for non-source vertex %d", x.Vertex)
		}
		if x.Port < 0 {
			return 0, fmt.Errorf("core: external input for vertex %d on negative port", x.Vertex)
		}
	}
	e.lock()
	defer e.mu.Unlock()
	if e.stopped {
		return 0, fmt.Errorf("core: engine stopped")
	}
	e.pmax++
	p := e.pmax
	ps := &phaseState{
		x:       0,
		partial: newBitset(e.g.N()),
		full:    newBitset(e.g.N()),
		inbox:   make(map[int][]portValue),
	}
	e.phases[p] = ps
	if obs := e.cfg.Observer; obs != nil {
		obs.PhaseStarted(p)
	}
	for _, x := range ext {
		ps.inbox[x.Vertex] = append(ps.inbox[x.Vertex], portValue{x.Port, x.Val})
	}
	// Statement 2.12-2.15: all source pairs enter the full set;
	// statements 2.16-2.19: those that are their vertex's minimum full
	// phase become ready and are enqueued.
	for s := 1; s <= e.g.Sources(); s++ {
		ps.full.set(s)
		if e.setObs != nil {
			e.setObs.PairFull(s, p)
		}
		e.noteFull(s, p, ps)
	}
	return p, nil
}

// noteFull records that (v, p) has entered the full set and, when it is
// v's minimum full phase and v has no pair in flight, moves it to the
// ready set and enqueues it with its input snapshot. Caller holds mu and
// has already inserted v into phases[p].full.
func (e *Engine) noteFull(v, p int, ps *phaseState) {
	vs := &e.vs[v-1]
	// Phases enter a vertex's full set in strictly increasing order: if
	// (v, q) with q > p were already full, all predecessors of v would
	// have finished phase q, hence also phase p, so (v, p) would have
	// been migrated or executed earlier. Guard the invariant cheaply.
	if n := len(vs.fullPhases); n > 0 && vs.fullPhases[n-1] >= p {
		panic(fmt.Sprintf("core: full phases out of order at vertex %d: %v then %d", v, vs.fullPhases, p))
	}
	vs.fullPhases = append(vs.fullPhases, p)
	if !vs.inReady && vs.fullPhases[0] == p {
		e.makeReady(v, p, ps)
	}
}

// makeReady moves (v, p) — v's minimum full phase — into the ready set:
// snapshots its inbox and enqueues it. Caller holds mu.
func (e *Engine) makeReady(v, p int, ps *phaseState) {
	e.vs[v-1].inReady = true
	in := ps.inbox[v]
	if in != nil {
		delete(ps.inbox, v)
	}
	if e.setObs != nil {
		e.setObs.PairReady(v, p)
	}
	if obs := e.cfg.Observer; obs != nil {
		obs.PairEnqueued(v, p)
	}
	e.q.Enqueue(workItem{v: v, p: p, in: in})
}

// worker is one computation process (Listing 1).
func (e *Engine) worker() {
	defer e.workers.Done()
	defer func() {
		if r := recover(); r != nil {
			e.panicOnce.Do(func() {
				e.panicked.Store(fmt.Sprintf("%v", r))
				// Wake anyone blocked in WaitPhase/Drain so the panic
				// surfaces instead of deadlocking the caller.
				e.mu.Lock()
				e.cond.Broadcast()
				e.mu.Unlock()
			})
		}
	}()
	ctx := &Context{}
	for {
		it, ok := e.q.Dequeue()
		if !ok {
			return
		}
		e.execute(ctx, it)
	}
}

// execute runs one dequeued pair: statements 1.3 (the computation,
// outside the lock) and 1.4-1.31 (via finish).
func (e *Engine) execute(ctx *Context, it workItem) {
	v := it.v
	obs := e.cfg.Observer
	ctx.reset(v, it.p, e.g.InDegree(v), e.g.OutDegree(v))
	for _, pv := range it.in {
		ctx.deliver(pv.port, pv.val)
	}
	if obs != nil {
		obs.ExecBegin(v, it.p)
	}
	if e.cfg.MeasureContention {
		t0 := time.Now()
		e.mods[v-1].Step(ctx)
		e.execTime.Add(int64(time.Since(t0)))
	} else {
		e.mods[v-1].Step(ctx)
	}
	if obs != nil {
		obs.ExecEnd(v, it.p, len(ctx.emits))
	}
	e.execs.Add(1)
	e.finish(v, it.p, ctx.emits)
}

// StepOne executes the oldest ready pair on the calling goroutine,
// reporting whether there was one. Requires Config.Manual.
func (e *Engine) StepOne() bool {
	if !e.cfg.Manual {
		panic("core: StepOne requires Config.Manual")
	}
	it, ok := e.q.TryDequeue()
	if !ok {
		return false
	}
	var ctx Context
	e.execute(&ctx, it)
	return true
}

// StepPair executes the ready pair (v, p) on the calling goroutine,
// reporting whether it was ready. Requires Config.Manual. Together with
// StartPhase this reproduces any legal interleaving of the algorithm —
// the trace of Figure 3 uses it to follow the paper's exact step order.
func (e *Engine) StepPair(v, p int) bool {
	if !e.cfg.Manual {
		panic("core: StepPair requires Config.Manual")
	}
	it, ok := e.q.TakeFunc(func(w workItem) bool { return w.v == v && w.p == p })
	if !ok {
		return false
	}
	var ctx Context
	e.execute(&ctx, it)
	return true
}

// finish performs the locked bookkeeping of Listing 1 (statements
// 1.4-1.31) after (v, p) has executed with the given emissions.
func (e *Engine) finish(v, p int, emits []Emission) {
	e.lock()
	defer e.mu.Unlock()

	ps := e.phases[p]
	if ps == nil {
		panic(fmt.Sprintf("core: finish(%d,%d) for closed phase", v, p))
	}

	// Statements 1.5-1.7: remove (v,p) from full and ready.
	if !ps.full.clear(v) {
		panic(fmt.Sprintf("core: executed pair (%d,%d) not in full set", v, p))
	}
	vs := &e.vs[v-1]
	if !vs.inReady || len(vs.fullPhases) == 0 || vs.fullPhases[0] != p {
		panic(fmt.Sprintf("core: ready bookkeeping corrupt at (%d,%d)", v, p))
	}
	vs.inReady = false
	vs.fullPhases = vs.fullPhases[1:]
	if e.setObs != nil {
		e.setObs.PairDone(v, p)
	}
	if e.execCount != nil {
		e.execCount[[2]int{v, p}]++
	}

	// Statements 1.8-1.11: deliver emissions; recipients join partial.
	succ := e.g.Succ(v)
	for _, em := range emits {
		w := succ[em.Out]
		port := e.g.PortOf(v, w)
		ps.inbox[w] = append(ps.inbox[w], portValue{port, em.Val})
		if ps.full.test(w) {
			// Impossible: w has v as a predecessor and v only finished
			// phase p now, so all of w's predecessors cannot already be
			// ≤ x_p. Fail loudly rather than corrupt the execution.
			panic(fmt.Sprintf("core: message for (%d,%d) which is already full", w, p))
		}
		if ps.partial.set(w) && e.setObs != nil {
			e.setObs.PairPartial(w, p)
		}
		e.msgs++
	}

	// Statements 1.12-1.23: update frontiers from phase p upward. If x_i
	// does not change, no later frontier can change either: only phase
	// p's sets changed in this update, and x_{i+1} depends only on its
	// own (unchanged) sets and the clamp against x_i.
	changedLo, changedHi := 0, -1
	for i := p; i <= e.pmax; i++ {
		psI := e.phases[i]
		var nx int
		if psI.pending() > 0 {
			nx = psI.minPending() - 1
		} else {
			nx = e.g.N()
		}
		if prev := e.xOf(i - 1); nx > prev {
			nx = prev
		}
		if nx == psI.x {
			break
		}
		if nx < psI.x {
			panic(fmt.Sprintf("core: frontier regression at phase %d: %d -> %d", i, psI.x, nx))
		}
		psI.x = nx
		if e.setObs != nil {
			e.setObs.FrontierMoved(i, nx)
		}
		if changedHi < 0 {
			changedLo = i
		}
		changedHi = i
	}

	// Statements 1.24-1.26: migrate newly full pairs, i.e. partial pairs
	// (w, q) with w ≤ m(x_q), for the phases whose frontier moved; then
	// statements 1.27-1.30: ready-check each.
	for i := changedLo; i <= changedHi; i++ {
		psI := e.phases[i]
		hi := e.g.M(psI.x)
		psI.partial.drainRange(0, hi, func(w int) {
			psI.full.set(w)
			if e.setObs != nil {
				e.setObs.PairFull(w, i)
			}
			e.noteFull(w, i, psI)
		})
	}

	// Statement 1.27 also covers the executed vertex's own next phase.
	if !vs.inReady && len(vs.fullPhases) > 0 {
		q := vs.fullPhases[0]
		e.makeReady(v, q, e.phases[q])
	}

	// Advance the completed-phase prefix. x_p = N requires x_{p-1} = N,
	// so completion is monotone in p and a simple scan suffices.
	for {
		next := e.phases[e.done+1]
		if next == nil || next.x != e.g.N() {
			break
		}
		if len(next.inbox) != 0 {
			panic(fmt.Sprintf("core: phase %d completed with %d undelivered inboxes", e.done+1, len(next.inbox)))
		}
		delete(e.phases, e.done+1)
		e.done++
		if obs := e.cfg.Observer; obs != nil {
			obs.PhaseCompleted(e.done)
		}
		e.cond.Broadcast()
	}
}

// xOf returns x_i under the convention x_0 = N and x_i = N for every
// completed phase. Caller holds mu.
func (e *Engine) xOf(i int) int {
	if i <= e.done {
		return e.g.N()
	}
	return e.phases[i].x
}

// WaitPhase blocks until phase p has completed (x_p = N). It panics if a
// worker panicked, propagating the failure to the caller.
func (e *Engine) WaitPhase(p int) {
	e.mu.Lock()
	for e.done < p {
		if msg := e.panicked.Load(); msg != nil {
			e.mu.Unlock()
			panic(fmt.Sprintf("core: worker panicked: %v", msg))
		}
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Drain blocks until every started phase has completed.
func (e *Engine) Drain() {
	e.mu.Lock()
	p := e.pmax
	e.mu.Unlock()
	e.WaitPhase(p)
}

// Stop drains all started phases, shuts down the worker pool and waits
// for it to exit. The engine cannot be restarted.
func (e *Engine) Stop() {
	e.Drain()
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		e.workers.Wait()
		return
	}
	e.stopped = true
	e.mu.Unlock()
	e.q.Close()
	e.workers.Wait()
	if msg := e.panicked.Load(); msg != nil {
		panic(fmt.Sprintf("core: worker panicked: %v", msg))
	}
}

// Run starts the engine, feeds it the given per-phase external input
// batches with MaxInFlight flow control, drains and stops. It returns
// the engine stats. Run is the whole-computation convenience wrapper
// used by examples, experiments and the sequential-equivalence tests.
func (e *Engine) Run(batches [][]ExtInput) (Stats, error) {
	e.Start()
	for i, b := range batches {
		p := i + 1
		if w := p - e.cfg.MaxInFlight; w >= 1 {
			e.WaitPhase(w)
		}
		if _, err := e.StartPhase(b); err != nil {
			return Stats{}, err
		}
	}
	e.Stop()
	return e.Stats(), nil
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	msgs := e.msgs
	done := int64(e.done)
	e.mu.Unlock()
	return Stats{
		Executions:       e.execs.Load(),
		Messages:         msgs,
		PhasesCompleted:  done,
		MaxQueueLen:      e.q.MaxLen(),
		LockWait:         time.Duration(e.lockWait.Load()),
		LockAcquisitions: e.lockAcq.Load(),
		ExecTime:         time.Duration(e.execTime.Load()),
	}
}

// ExecCount reports how many times (v, p) executed. Requires
// Config.CountExecutions; used by the exactly-once tests.
func (e *Engine) ExecCount(v, p int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.execCount[[2]int{v, p}]
}

// ExecCounts returns a copy of the full execution-count map.
func (e *Engine) ExecCounts() map[[2]int]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[[2]int]int, len(e.execCount))
	for k, n := range e.execCount {
		out[k] = n
	}
	return out
}
