// Package core implements the paper's parallel algorithm for executing
// serializable Δ-dataflow computation graphs on a shared-memory
// multiprocessor (§3 of the paper).
//
// The engine has two commit paths with identical observable semantics:
//
// The locked path in this file follows Listings 1 and 2 literally,
// under a single global lock:
//
//   - per-phase partial and full sets (equations 7 and 9) as bitsets of
//     vertex indices,
//   - the implicit ready set (equation 8), realized as a per-vertex
//     "minimum full phase" rule plus a blocking run queue,
//   - the per-phase frontier x_p — the highest index such that all
//     vertices indexed ≤ x_p have finished phase p, clamped by x_{p-1}
//     so later phases never overtake earlier ones,
//   - pmax, the newest started phase.
//
// It serves Manual mode (StepOne/StepPair, the Figure 3 trace) and any
// engine with an Observer attached, where callers rely on callbacks
// being serialized under the engine lock.
//
// The decentralized path (decentral.go, DESIGN.md §14) serves
// steady-state concurrent execution: per-vertex locks, per-edge
// resolution counting in place of the frontier sweep, and an atomic
// per-phase commit counter, so finishing a pair never takes the engine
// mutex. New selects the path once per engine.
//
// Worker goroutines play the computation processes of Listing 1: dequeue
// a ready (vertex, phase) pair, execute the module outside the lock,
// then update the data structures. StartPhase plays one iteration of
// the environment process of Listing 2.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/graph"
	"repro/internal/runqueue"
)

// Observer receives engine lifecycle callbacks. PhaseStarted,
// PairEnqueued and PhaseCompleted are invoked while the engine lock is
// held: implementations must be fast and must not call back into the
// engine. ExecBegin and ExecEnd are invoked outside the lock on worker
// goroutines and may run concurrently with each other.
type Observer interface {
	PhaseStarted(p int)
	PairEnqueued(v, p int)
	ExecBegin(v, p int)
	ExecEnd(v, p int, emitted int)
	PhaseCompleted(p int)
}

// SetObserver receives fine-grained set-transition callbacks mirroring
// the partial/full/ready set manipulations of Listings 1 and 2. An
// Observer that also implements SetObserver (detected once at New) gets
// these calls while the engine lock is held; implementations must be
// fast and must not call back into the engine. Used by the trace
// recorder that reproduces Figure 3.
type SetObserver interface {
	// PairPartial fires when (v, p) enters the partial set.
	PairPartial(v, p int)
	// PairFull fires when (v, p) enters the full set (directly, for
	// sources, or by migration from partial).
	PairFull(v, p int)
	// PairReady fires when (v, p) enters the ready set.
	PairReady(v, p int)
	// PairDone fires when (v, p) is removed from the full and ready sets
	// after executing.
	PairDone(v, p int)
	// FrontierMoved fires when x_p changes to x.
	FrontierMoved(p, x int)
}

// FeedObserver extends Observer with the feed-side event RunFeed
// emits: an Observer that also implements FeedObserver (detected once
// at New) sees each phase's external-input batch the moment it is
// accepted, before the phase opens. This completes the record/replay
// tap's view of the engine (DESIGN.md §11): phase launch/commit and
// vertex executions come from Observer, the fed inputs from here. The
// slice is the engine's own; implementations must not retain it.
type FeedObserver interface {
	// PhaseFed fires with phase p's accepted external inputs.
	PhaseFed(p int, ext []ExtInput)
}

// Config tunes an Engine.
type Config struct {
	// Workers is the number of computation goroutines (the paper's pool
	// of computation threads). Defaults to 1.
	Workers int
	// MaxInFlight bounds how many phases may be open concurrently during
	// Run: phase p is not started until phase p-MaxInFlight has
	// completed. This models the environment process pacing phase starts
	// on external data arrival, and keeps the frontier window small.
	// Defaults to 64. It does not limit explicit StartPhase calls.
	MaxInFlight int
	// BasePhase offsets the engine's phase numbering: the first phase
	// started is BasePhase+1 and phases ≤ BasePhase count as already
	// complete. A fresh engine that resumes a computation mid-stream —
	// the epoch after a distrib rebalance — uses it so modules keep
	// observing globally continuous ctx.Phase() numbers across the
	// switch. Zero (the default) keeps the usual 1-based numbering.
	// Negative values are rejected by New.
	BasePhase int
	// Observer, when non-nil, receives lifecycle callbacks.
	Observer Observer
	// CountExecutions records how many times each (vertex, phase) pair
	// executes, for the exactly-once tests. Costs one map update per
	// execution; leave off in benchmarks.
	CountExecutions bool
	// MeasureContention records time spent waiting for the global lock
	// and time spent inside module Steps (experiment E8).
	MeasureContention bool
	// MeasureVertexTimes records each vertex's cumulative Step wall
	// time, surfaced by Engine.VertexTimes — the calibration input
	// distrib.MeasuredCosts converts into planner costs. Costs one
	// timestamp pair plus an atomic add per execution.
	MeasureVertexTimes bool
	// Manual disables the worker pool: no goroutines are spawned and the
	// caller drives execution with StepOne/StepPair. Used by traces and
	// debugging tools that need a deterministic, chosen interleaving.
	Manual bool
}

// ExtInput is one external observation delivered to a source vertex at
// the start of a phase (the paper's sensor events).
type ExtInput struct {
	// Vertex is the 1-based index of a source vertex.
	Vertex int
	// Port is the input port the observation arrives on; sources
	// conventionally use port 0 but may expose several external ports.
	Port int
	// Val is the payload.
	Val event.Value
}

// workItem is one run-queue entry: a ready (vertex, phase) pair together
// with the complete snapshot of inputs it is entitled to.
type workItem struct {
	v, p int
	in   []portValue
}

// portValue is one received input message.
type portValue struct {
	port int
	val  event.Value
}

// phaseState is the engine's record of one open phase. States are
// recycled through a free list (DESIGN.md §3): the per-vertex tables
// are allocated once per object and reused across phases, so
// steady-state phase turnover is allocation-free. The locked path uses
// the bitsets/inbox fields, the decentralized path the slots/counter
// fields; each engine allocates only its own path's tables.
type phaseState struct {
	// pnum is the phase this state currently represents; the ring lookup
	// checks it so a stale slot can never be mistaken for an open phase.
	// Atomic because decentralized-path lookups may probe a not-yet-open
	// phase and race a concurrent reuse of this object (see phaseRing).
	pnum atomic.Int64
	// x is the frontier x_p of §3.1.2 (locked path).
	x int
	// partial and full are the sets of equations (9) and (7), restricted
	// to this phase (locked path).
	partial *bitset
	full    *bitset
	// inbox buffers messages delivered for this phase until the pair
	// becomes ready: slot v-1 holds vertex v's pending inputs. A slot is
	// nil when empty; its slice is pooled on the engine's free list when
	// the pair is snapshotted, so delivery does not allocate in steady
	// state (locked path).
	inbox [][]portValue
	// inboxed counts non-nil inbox slots (pairs with undelivered input).
	inboxed int
	// slots holds each vertex's input buffer and predecessor countdown
	// for this phase (decentralized path; guarded by the vertex locks).
	slots []vslot
	// unresolvedVerts counts vertices that have not yet resolved this
	// phase; the last resolution commits it (decentralized path).
	unresolvedVerts atomic.Int64
}

func (ps *phaseState) pending() int { return ps.partial.count + ps.full.count }

func (ps *phaseState) minPending() int {
	mp, mf := ps.partial.min(), ps.full.min()
	if mp == 0 {
		return mf
	}
	if mf == 0 || mp < mf {
		return mp
	}
	return mf
}

// vertexState tracks the ready-set bookkeeping for one vertex.
type vertexState struct {
	// mu guards every field on the decentralized path (the locked path
	// guards them with the engine mutex instead and never takes mu).
	// Vertex locks nest only in ascending vertex order, always below
	// e.mu — see the hierarchy note in decentral.go.
	mu sync.Mutex
	// inReady is true while some (v, p) sits in the ready set (i.e. in
	// the run queue or executing). At most one phase per vertex may be
	// ready at a time, and it is always the minimum full phase.
	inReady bool
	// fullPhases lists the phases p with (v, p) in the full set,
	// ascending. Entries are appended in strictly increasing order (see
	// the invariant argument in finish) and removed from the front by
	// shifting in place, so the backing array's capacity is retained.
	fullPhases []int
	// resolved is the newest phase this vertex has resolved —
	// executed, or proven input-free — on the decentralized path.
	// Resolutions are strictly ordered per vertex.
	resolved int
	// pad vertexState to a cache line so adjacent vertices' locks do
	// not false-share.
	_ [16]byte
}

// Stats is a snapshot of engine counters.
type Stats struct {
	// Executions is the number of (vertex, phase) pairs executed.
	Executions int64
	// Messages is the number of inter-vertex messages delivered.
	Messages int64
	// PhasesCompleted is the number of phases fully executed.
	PhasesCompleted int64
	// MaxQueueLen is the run queue's high-water mark.
	MaxQueueLen int
	// LockWait is the cumulative time workers and the environment spent
	// acquiring engine locks — the global mutex plus, on the
	// decentralized path, every per-vertex lock (only when
	// MeasureContention).
	LockWait time.Duration
	// LockAcquisitions counts acquisitions of the same locks (only when
	// MeasureContention).
	LockAcquisitions int64
	// ExecTime is cumulative wall time inside module Steps (only when
	// MeasureContention).
	ExecTime time.Duration
}

// Engine executes a numbered computation graph with the paper's parallel
// algorithm.
type Engine struct {
	g       *graph.Numbered
	mods    []Module
	cfg     Config
	setObs  SetObserver  // non-nil when cfg.Observer also observes sets
	feedObs FeedObserver // non-nil when cfg.Observer also observes feeds
	q       *runqueue.Sharded[workItem]

	workers sync.WaitGroup
	started bool
	stopped bool

	// fast selects the decentralized commit path (decentral.go): no
	// Manual stepping and no Observer, so nothing relies on bookkeeping
	// being serialized under the engine mutex. Chosen once at New.
	fast bool

	mu   sync.Mutex
	cond sync.Cond // broadcast whenever a phase completes

	// ring holds the open phases (done+1 .. pmax), indexed by phase
	// number masked to the power-of-two capacity. Phases open
	// sequentially and the window is bounded by MaxInFlight under Run,
	// so a direct-mapped ring replaces the former map[int]*phaseState
	// and its per-lookup hashing on the hot path; explicit StartPhase
	// bursts beyond the capacity grow the ring. The ring pointer and
	// its slots are atomic so the decentralized path can look phases up
	// without the mutex; all mutation stays under mu.
	ring atomic.Pointer[phaseRing]
	pmax int // newest started phase (under mu)
	done int // all phases ≤ done are complete (under mu)

	// freePhases recycles phaseState objects (their per-vertex tables)
	// across phases; freeIn recycles the portValue slices that flow
	// from inbox slots into workItem snapshots and back on the locked
	// path — the decentralized path returns snapshots straight to their
	// slot instead. scratch backs the partial→full migration scan. All
	// are guarded by mu.
	freePhases []*phaseState
	freeIn     [][]portValue
	scratch    []int

	vs []vertexState

	// ports[v-1][si] caches graph.PortOf(v, Succ(v)[si]): the input
	// port on the si-th successor that edge delivers to. Precomputed at
	// New so delivery needs no map lookup.
	ports [][]int

	// wstate[i] is worker shard i's contention-free scratch; the extra
	// trailing slot serves shard -1 (environment thread, manual steps).
	wstate []workerScratch

	// execShards, when CountExecutions, shards the (v,p)→count map the
	// same way as wstate; ExecCount/ExecCounts merge.
	execShards []execShard

	// manualCtx is the execution context reused by StepOne/StepPair;
	// Manual stepping is driven by one caller goroutine at a time, and
	// stepping guards that contract with a panic instead of letting
	// concurrent callers corrupt the shared context.
	manualCtx Context
	stepping  atomic.Bool

	// counters
	execs    atomic.Int64
	lockWait atomic.Int64
	lockAcq  atomic.Int64
	execTime atomic.Int64

	// vertexNs[v-1] accumulates vertex v's Step time (atomically:
	// workers execute concurrently). Nil unless MeasureVertexTimes.
	vertexNs []int64

	panicOnce sync.Once
	panicked  atomic.Value // first worker panic, re-raised by Drain/Stop
}

// New builds an engine over a numbered graph. mods[v-1] is the module
// for vertex v; every vertex must have a module. The graph must have at
// least one vertex (and hence, being a DAG, at least one source).
func New(g *graph.Numbered, mods []Module, cfg Config) (*Engine, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if len(mods) != g.N() {
		return nil, fmt.Errorf("core: %d modules for %d vertices", len(mods), g.N())
	}
	for i, m := range mods {
		if m == nil {
			return nil, fmt.Errorf("core: vertex %d has nil module", i+1)
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.BasePhase < 0 {
		return nil, fmt.Errorf("core: negative base phase %d", cfg.BasePhase)
	}
	// One run-queue shard per worker; Manual mode uses a single shard so
	// StepOne/TakeFunc keep the exact FIFO semantics of the old queue.
	shards := cfg.Workers
	if cfg.Manual {
		shards = 1
	}
	ringCap := 8
	for ringCap < cfg.MaxInFlight {
		ringCap *= 2
	}
	e := &Engine{
		g:      g,
		mods:   mods,
		cfg:    cfg,
		q:      runqueue.NewSharded[workItem](shards, 256),
		pmax:   cfg.BasePhase,
		done:   cfg.BasePhase,
		vs:     make([]vertexState, g.N()),
		wstate: make([]workerScratch, cfg.Workers+1),
		ports:  make([][]int, g.N()),
	}
	e.ring.Store(&phaseRing{
		slots: make([]atomic.Pointer[phaseState], ringCap),
		mask:  ringCap - 1,
	})
	e.fast = !cfg.Manual && cfg.Observer == nil
	for v := 1; v <= g.N(); v++ {
		succ := g.Succ(v)
		if len(succ) == 0 {
			continue
		}
		row := make([]int, len(succ))
		for si, w := range succ {
			row[si] = g.PortOf(v, w)
		}
		e.ports[v-1] = row
	}
	for i := range e.vs {
		e.vs[i].resolved = cfg.BasePhase
	}
	e.cond.L = &e.mu
	if so, ok := cfg.Observer.(SetObserver); ok {
		e.setObs = so
	}
	if fo, ok := cfg.Observer.(FeedObserver); ok {
		e.feedObs = fo
	}
	if cfg.CountExecutions {
		e.execShards = make([]execShard, cfg.Workers+1)
		for i := range e.execShards {
			e.execShards[i].m = make(map[[2]int]int)
		}
	}
	if cfg.MeasureVertexTimes {
		e.vertexNs = make([]int64, g.N())
	}
	return e, nil
}

// Graph returns the engine's numbered graph.
func (e *Engine) Graph() *graph.Numbered { return e.g }

// lock acquires the global lock, recording contention when configured.
// The uncontended TryLock path records the acquisition but skips the
// clock — succeeding immediately means the wait was zero.
func (e *Engine) lock() {
	if !e.cfg.MeasureContention {
		e.mu.Lock()
		return
	}
	e.lockAcq.Add(1)
	if e.mu.TryLock() {
		return
	}
	t0 := time.Now()
	e.mu.Lock()
	e.lockWait.Add(int64(time.Since(t0)))
}

// phaseAt returns the open phase p, or nil if p is closed (or never
// opened). Safe without mu: the ring pointer and slots are atomic and
// the pnum check rejects stale or reused states (see phaseRing).
func (e *Engine) phaseAt(p int) *phaseState {
	r := e.ring.Load()
	ps := r.slots[p&r.mask].Load()
	if ps == nil || ps.pnum.Load() != int64(p) {
		return nil
	}
	return ps
}

// growRing doubles the ring capacity and re-slots the open phases.
// Caller holds mu. Open phases are consecutive integers, so doubling
// until the window fits always resolves slot collisions. The old ring
// stays valid for concurrent readers; they re-load the pointer per
// lookup and only ever miss, never alias.
func (e *Engine) growRing() {
	old := e.ring.Load()
	nr := &phaseRing{
		slots: make([]atomic.Pointer[phaseState], 2*len(old.slots)),
		mask:  2*len(old.slots) - 1,
	}
	for i := range old.slots {
		if ps := old.slots[i].Load(); ps != nil {
			nr.slots[int(ps.pnum.Load())&nr.mask].Store(ps)
		}
	}
	e.ring.Store(nr)
}

// openPhase installs a state for phase p, recycling one from the free
// list when possible. Caller holds mu. The state is fully initialized
// — pnum, frontier, commit counter — before the slot store publishes
// it to lock-free readers.
func (e *Engine) openPhase(p int) *phaseState {
	for {
		r := e.ring.Load()
		if r.slots[p&r.mask].Load() == nil {
			break
		}
		e.growRing()
	}
	var ps *phaseState
	if n := len(e.freePhases); n > 0 {
		ps = e.freePhases[n-1]
		e.freePhases[n-1] = nil
		e.freePhases = e.freePhases[:n-1]
	} else if e.fast {
		ps = e.newFastState()
	} else {
		ps = &phaseState{
			partial: newBitset(e.g.N()),
			full:    newBitset(e.g.N()),
			inbox:   make([][]portValue, e.g.N()),
		}
	}
	ps.pnum.Store(int64(p))
	ps.x = 0
	if e.fast {
		ps.unresolvedVerts.Store(int64(e.g.N()))
	}
	r := e.ring.Load()
	r.slots[p&r.mask].Store(ps)
	return ps
}

// closePhase removes the completed phase state from the ring and returns
// it to the free list. Caller holds mu; the phase's sets and inbox (or
// its slots, on the decentralized path, re-armed by the resolution
// protocol) are settled by the completion invariant, so the recycled
// tables need no clearing.
func (e *Engine) closePhase(ps *phaseState) {
	if e.fast {
		if n := ps.unresolvedVerts.Load(); n != 0 {
			panic(fmt.Sprintf("core: phase %d completed with %d unresolved vertices", ps.pnum.Load(), n))
		}
	} else if ps.partial.count != 0 || ps.full.count != 0 {
		panic(fmt.Sprintf("core: phase %d completed with %d partial / %d full pairs",
			ps.pnum.Load(), ps.partial.count, ps.full.count))
	}
	r := e.ring.Load()
	r.slots[int(ps.pnum.Load())&r.mask].Store(nil)
	e.freePhases = append(e.freePhases, ps)
}

// deliverTo appends one input message to (w, ps.p)'s inbox slot, taking
// a pooled slice for a previously empty slot. Caller holds mu.
func (e *Engine) deliverTo(ps *phaseState, w int, pv portValue) {
	s := ps.inbox[w-1]
	if s == nil {
		if n := len(e.freeIn); n > 0 {
			s = e.freeIn[n-1]
			e.freeIn[n-1] = nil
			e.freeIn = e.freeIn[:n-1]
		}
		ps.inboxed++
	}
	ps.inbox[w-1] = append(s, pv)
}

// recycleIn returns a consumed workItem input snapshot to the slice
// pool, dropping payload references first. Caller holds mu.
func (e *Engine) recycleIn(in []portValue) {
	clear(in)
	e.freeIn = append(e.freeIn, in[:0])
}

// Start launches the worker pool. It may be called before or after the
// first StartPhase; items enqueued earlier are picked up on start.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	if e.cfg.Manual {
		return
	}
	for i := 0; i < e.cfg.Workers; i++ {
		e.workers.Add(1)
		go e.worker(i)
	}
}

// StartPhase opens the next phase, delivering the given external
// observations to source vertices, and returns the phase number. It is
// one iteration of the environment process of Listing 2: every source
// vertex receives its phase signal and joins the full set.
func (e *Engine) StartPhase(ext []ExtInput) (int, error) {
	for _, x := range ext {
		if x.Vertex < 1 || x.Vertex > e.g.N() || !e.g.IsSource(x.Vertex) {
			return 0, fmt.Errorf("core: external input for non-source vertex %d", x.Vertex)
		}
		if x.Port < 0 {
			return 0, fmt.Errorf("core: external input for vertex %d on negative port", x.Vertex)
		}
	}
	e.lock()
	defer e.mu.Unlock()
	if e.stopped {
		return 0, fmt.Errorf("core: engine stopped")
	}
	e.pmax++
	p := e.pmax
	ps := e.openPhase(p)
	if obs := e.cfg.Observer; obs != nil {
		obs.PhaseStarted(p)
	}
	if e.fast {
		e.startPhaseFast(p, ps, ext)
		return p, nil
	}
	for _, x := range ext {
		e.deliverTo(ps, x.Vertex, portValue{x.Port, x.Val})
	}
	// Statement 2.12-2.15: all source pairs enter the full set;
	// statements 2.16-2.19: those that are their vertex's minimum full
	// phase become ready and are enqueued.
	for s := 1; s <= e.g.Sources(); s++ {
		ps.full.set(s)
		if e.setObs != nil {
			e.setObs.PairFull(s, p)
		}
		// The environment thread enqueues round-robin across shards.
		e.noteFull(s, p, ps, -1)
	}
	return p, nil
}

// noteFull records that (v, p) has entered the full set and, when it is
// v's minimum full phase and v has no pair in flight, moves it to the
// ready set and enqueues it with its input snapshot. Caller holds mu and
// has already inserted v into phases[p].full.
func (e *Engine) noteFull(v, p int, ps *phaseState, shard int) {
	vs := &e.vs[v-1]
	// Phases enter a vertex's full set in strictly increasing order: if
	// (v, q) with q > p were already full, all predecessors of v would
	// have finished phase q, hence also phase p, so (v, p) would have
	// been migrated or executed earlier. Guard the invariant cheaply.
	if n := len(vs.fullPhases); n > 0 && vs.fullPhases[n-1] >= p {
		panic(fmt.Sprintf("core: full phases out of order at vertex %d: %v then %d", v, vs.fullPhases, p))
	}
	vs.fullPhases = append(vs.fullPhases, p)
	if !vs.inReady && vs.fullPhases[0] == p {
		e.makeReady(v, p, ps, shard)
	}
}

// makeReady moves (v, p) — v's minimum full phase — into the ready set:
// snapshots its inbox and enqueues it to the given run-queue shard (the
// finishing worker's own shard, or -1 for round-robin from the
// environment thread). Caller holds mu.
func (e *Engine) makeReady(v, p int, ps *phaseState, shard int) {
	e.vs[v-1].inReady = true
	in := ps.inbox[v-1]
	if in != nil {
		ps.inbox[v-1] = nil
		ps.inboxed--
	}
	if e.setObs != nil {
		e.setObs.PairReady(v, p)
	}
	if obs := e.cfg.Observer; obs != nil {
		obs.PairEnqueued(v, p)
	}
	e.q.Enqueue(shard, workItem{v: v, p: p, in: in})
}

// worker is one computation process (Listing 1). id is its run-queue
// shard: it dequeues from its own shard first, steals otherwise, and
// pairs it enqueues while finishing go to its own shard.
func (e *Engine) worker(id int) {
	defer e.workers.Done()
	defer func() {
		if r := recover(); r != nil {
			e.panicOnce.Do(func() {
				e.panicked.Store(fmt.Sprintf("%v", r))
				// Wake anyone blocked in WaitPhase/Drain so the panic
				// surfaces instead of deadlocking the caller.
				e.mu.Lock()
				e.cond.Broadcast()
				e.mu.Unlock()
			})
		}
	}()
	ctx := &Context{}
	for {
		it, ok := e.q.Dequeue(id)
		if !ok {
			return
		}
		e.execute(ctx, it, id)
	}
}

// execute runs one dequeued pair: statements 1.3 (the computation,
// outside the lock) and 1.4-1.31 (via finish). shard is the executing
// worker's run-queue shard hint (-1 outside the worker pool).
func (e *Engine) execute(ctx *Context, it workItem, shard int) {
	v := it.v
	obs := e.cfg.Observer
	ctx.reset(v, it.p, e.g.InDegree(v), e.g.OutDegree(v))
	for _, pv := range it.in {
		ctx.deliver(pv.port, pv.val)
	}
	if obs != nil {
		obs.ExecBegin(v, it.p)
	}
	if e.cfg.MeasureContention || e.cfg.MeasureVertexTimes {
		t0 := time.Now()
		e.mods[v-1].Step(ctx)
		d := int64(time.Since(t0))
		if e.cfg.MeasureContention {
			e.execTime.Add(d)
		}
		if e.vertexNs != nil {
			atomic.AddInt64(&e.vertexNs[v-1], d)
		}
	} else {
		e.mods[v-1].Step(ctx)
	}
	if obs != nil {
		obs.ExecEnd(v, it.p, len(ctx.emits))
	}
	e.execs.Add(1)
	if e.execShards != nil {
		sh := e.execShardFor(shard)
		sh.mu.Lock()
		sh.m[[2]int{v, it.p}]++
		sh.mu.Unlock()
	}
	if e.fast {
		e.finishFast(v, it.p, ctx.emits, it.in, shard)
	} else {
		e.finish(v, it.p, ctx.emits, it.in, shard)
	}
}

// StepOne executes the oldest ready pair on the calling goroutine,
// reporting whether there was one. Requires Config.Manual. Manual
// stepping reuses one engine-owned execution context, so StepOne and
// StepPair must be driven from a single goroutine at a time.
func (e *Engine) StepOne() bool {
	if !e.cfg.Manual {
		panic("core: StepOne requires Config.Manual")
	}
	it, ok := e.q.TryDequeue()
	if !ok {
		return false
	}
	if !e.stepping.CompareAndSwap(false, true) {
		panic("core: concurrent manual stepping")
	}
	defer e.stepping.Store(false)
	e.execute(&e.manualCtx, it, -1)
	return true
}

// StepPair executes the ready pair (v, p) on the calling goroutine,
// reporting whether it was ready. Requires Config.Manual, and like
// StepOne must be driven from a single goroutine at a time. Together
// with StartPhase this reproduces any legal interleaving of the
// algorithm — the trace of Figure 3 uses it to follow the paper's
// exact step order.
func (e *Engine) StepPair(v, p int) bool {
	if !e.cfg.Manual {
		panic("core: StepPair requires Config.Manual")
	}
	it, ok := e.q.TakeFunc(func(w workItem) bool { return w.v == v && w.p == p })
	if !ok {
		return false
	}
	if !e.stepping.CompareAndSwap(false, true) {
		panic("core: concurrent manual stepping")
	}
	defer e.stepping.Store(false)
	e.execute(&e.manualCtx, it, -1)
	return true
}

// finish performs the locked bookkeeping of Listing 1 (statements
// 1.4-1.31) after (v, p) has executed with the given emissions. in is
// the consumed input snapshot (returned to the slice pool) and shard
// the executing worker's run-queue shard hint.
func (e *Engine) finish(v, p int, emits []Emission, in []portValue, shard int) {
	e.lock()
	defer e.mu.Unlock()
	if in != nil {
		e.recycleIn(in)
	}

	ps := e.phaseAt(p)
	if ps == nil {
		panic(fmt.Sprintf("core: finish(%d,%d) for closed phase", v, p))
	}

	// Statements 1.5-1.7: remove (v,p) from full and ready.
	if !ps.full.clear(v) {
		panic(fmt.Sprintf("core: executed pair (%d,%d) not in full set", v, p))
	}
	vs := &e.vs[v-1]
	if !vs.inReady || len(vs.fullPhases) == 0 || vs.fullPhases[0] != p {
		panic(fmt.Sprintf("core: ready bookkeeping corrupt at (%d,%d)", v, p))
	}
	vs.inReady = false
	vs.fullPhases = vs.fullPhases[:copy(vs.fullPhases, vs.fullPhases[1:])]
	if e.setObs != nil {
		e.setObs.PairDone(v, p)
	}

	// Statements 1.8-1.11: deliver emissions; recipients join partial.
	succ := e.g.Succ(v)
	for _, em := range emits {
		w := succ[em.Out]
		port := e.ports[v-1][em.Out]
		e.deliverTo(ps, w, portValue{port, em.Val})
		if ps.full.test(w) {
			// Impossible: w has v as a predecessor and v only finished
			// phase p now, so all of w's predecessors cannot already be
			// ≤ x_p. Fail loudly rather than corrupt the execution.
			panic(fmt.Sprintf("core: message for (%d,%d) which is already full", w, p))
		}
		if ps.partial.set(w) && e.setObs != nil {
			e.setObs.PairPartial(w, p)
		}
	}
	if len(emits) > 0 {
		atomic.AddInt64(&e.scratchFor(shard).msgs, int64(len(emits)))
	}

	// Statements 1.12-1.23: update frontiers from phase p upward. If x_i
	// does not change, no later frontier can change either: only phase
	// p's sets changed in this update, and x_{i+1} depends only on its
	// own (unchanged) sets and the clamp against x_i.
	changedLo, changedHi := 0, -1
	for i := p; i <= e.pmax; i++ {
		psI := e.phaseAt(i)
		var nx int
		if psI.pending() > 0 {
			nx = psI.minPending() - 1
		} else {
			nx = e.g.N()
		}
		if prev := e.xOf(i - 1); nx > prev {
			nx = prev
		}
		if nx == psI.x {
			break
		}
		if nx < psI.x {
			panic(fmt.Sprintf("core: frontier regression at phase %d: %d -> %d", i, psI.x, nx))
		}
		psI.x = nx
		if e.setObs != nil {
			e.setObs.FrontierMoved(i, nx)
		}
		if changedHi < 0 {
			changedLo = i
		}
		changedHi = i
	}

	// Statements 1.24-1.26: migrate newly full pairs, i.e. partial pairs
	// (w, q) with w ≤ m(x_q), for the phases whose frontier moved; then
	// statements 1.27-1.30: ready-check each.
	for i := changedLo; i <= changedHi; i++ {
		psI := e.phaseAt(i)
		hi := e.g.M(psI.x)
		e.scratch = psI.partial.drainRange(0, hi, e.scratch, func(w int) {
			psI.full.set(w)
			if e.setObs != nil {
				e.setObs.PairFull(w, i)
			}
			e.noteFull(w, i, psI, shard)
		})
	}

	// Statement 1.27 also covers the executed vertex's own next phase.
	if !vs.inReady && len(vs.fullPhases) > 0 {
		q := vs.fullPhases[0]
		e.makeReady(v, q, e.phaseAt(q), shard)
	}

	// Advance the completed-phase prefix. x_p = N requires x_{p-1} = N,
	// so completion is monotone in p and a simple scan suffices.
	for {
		next := e.phaseAt(e.done + 1)
		if next == nil || next.x != e.g.N() {
			break
		}
		if next.inboxed != 0 {
			panic(fmt.Sprintf("core: phase %d completed with %d undelivered inboxes", e.done+1, next.inboxed))
		}
		e.closePhase(next)
		e.done++
		if obs := e.cfg.Observer; obs != nil {
			obs.PhaseCompleted(e.done)
		}
		e.cond.Broadcast()
	}
}

// xOf returns x_i under the convention x_0 = N and x_i = N for every
// completed phase. Caller holds mu.
func (e *Engine) xOf(i int) int {
	if i <= e.done {
		return e.g.N()
	}
	return e.phaseAt(i).x
}

// WaitPhase blocks until phase p has completed (x_p = N). It panics if a
// worker panicked, propagating the failure to the caller.
func (e *Engine) WaitPhase(p int) {
	e.mu.Lock()
	for e.done < p {
		if msg := e.panicked.Load(); msg != nil {
			e.mu.Unlock()
			panic(fmt.Sprintf("core: worker panicked: %v", msg))
		}
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Drain blocks until every started phase has completed.
func (e *Engine) Drain() {
	e.mu.Lock()
	p := e.pmax
	e.mu.Unlock()
	e.WaitPhase(p)
}

// Stop drains all started phases, shuts down the worker pool and waits
// for it to exit. The engine cannot be restarted.
func (e *Engine) Stop() {
	e.Drain()
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		e.workers.Wait()
		return
	}
	e.stopped = true
	e.mu.Unlock()
	e.q.Close()
	e.workers.Wait()
	if msg := e.panicked.Load(); msg != nil {
		panic(fmt.Sprintf("core: worker panicked: %v", msg))
	}
}

// FeedFunc supplies the external inputs for phase p (BasePhase+1-based).
// RunFeed calls it once per phase in ascending order, after the
// MaxInFlight window has opened for that phase; it may block (e.g. on a
// cross-machine link) and its error aborts the run. Returning
// ErrStopFeed instead quiesces the run cleanly: no further phases open,
// already-started phases complete, and RunFeed reports ErrStopFeed so
// the caller can tell a deliberate stop from a failure.
type FeedFunc func(p int) ([]ExtInput, error)

// ErrStopFeed is the sentinel a FeedFunc returns to end a RunFeed run
// early but cleanly — the epoch-barrier quiesce of distrib's dynamic
// repartitioning. The engine stops exactly as it would at the natural
// end of the run: every started phase executes to completion and the
// worker pool drains, leaving all module state consistent as of the
// last started phase.
var ErrStopFeed = errors.New("core: feed stopped")

// RunFeed starts the engine and opens `phases` phases (numbered
// BasePhase+1 through BasePhase+phases), pulling each phase's external
// inputs from feed under MaxInFlight flow control, then drains and
// stops. onStarted, when non-nil, is invoked after each successful
// StartPhase with the phase number — a partitioned machine's egress
// loop uses it to learn which phases will complete and must be shipped
// downstream (internal/distrib). On a feed or StartPhase error the
// engine is stopped — already-started phases complete — and the stats
// accumulated so far are returned with the error (ErrStopFeed included,
// so quiesced callers can distinguish the clean early stop).
func (e *Engine) RunFeed(phases int, feed FeedFunc, onStarted func(p int)) (Stats, error) {
	e.Start()
	base := e.cfg.BasePhase
	for p := base + 1; p <= base+phases; p++ {
		if w := p - e.cfg.MaxInFlight; w > base {
			e.WaitPhase(w)
		}
		ext, err := feed(p)
		if err != nil {
			e.Stop()
			return e.Stats(), err
		}
		if e.feedObs != nil {
			e.feedObs.PhaseFed(p, ext)
		}
		if _, err := e.StartPhase(ext); err != nil {
			e.Stop()
			return e.Stats(), err
		}
		if onStarted != nil {
			onStarted(p)
		}
	}
	e.Stop()
	return e.Stats(), nil
}

// Run starts the engine, feeds it the given per-phase external input
// batches with MaxInFlight flow control, drains and stops. It returns
// the engine stats. Run is the whole-computation convenience wrapper
// used by examples, experiments and the sequential-equivalence tests.
// batches[i] feeds phase BasePhase+1+i.
func (e *Engine) Run(batches [][]ExtInput) (Stats, error) {
	return e.RunFeed(len(batches), func(p int) ([]ExtInput, error) {
		return batches[p-1-e.cfg.BasePhase], nil
	}, nil)
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	done := int64(e.done - e.cfg.BasePhase)
	e.mu.Unlock()
	var msgs int64
	for i := range e.wstate {
		msgs += atomic.LoadInt64(&e.wstate[i].msgs)
	}
	return Stats{
		Executions:       e.execs.Load(),
		Messages:         msgs,
		PhasesCompleted:  done,
		MaxQueueLen:      e.q.MaxLen(),
		LockWait:         time.Duration(e.lockWait.Load()),
		LockAcquisitions: e.lockAcq.Load(),
		ExecTime:         time.Duration(e.execTime.Load()),
	}
}

// VertexTimes returns each vertex's cumulative Step wall time
// (index v-1 for vertex v). Requires Config.MeasureVertexTimes; the
// returned slice is a snapshot and safe to keep.
func (e *Engine) VertexTimes() []time.Duration {
	if e.vertexNs == nil {
		return nil
	}
	out := make([]time.Duration, len(e.vertexNs))
	for i := range out {
		out[i] = time.Duration(atomic.LoadInt64(&e.vertexNs[i]))
	}
	return out
}

// ExecCount reports how many times (v, p) executed, merged across the
// per-worker count shards. Requires Config.CountExecutions; used by
// the exactly-once tests.
func (e *Engine) ExecCount(v, p int) int {
	k := [2]int{v, p}
	n := 0
	for i := range e.execShards {
		sh := &e.execShards[i]
		sh.mu.Lock()
		n += sh.m[k]
		sh.mu.Unlock()
	}
	return n
}

// ExecCounts returns the full execution-count map, merged across the
// per-worker count shards.
func (e *Engine) ExecCounts() map[[2]int]int {
	out := make(map[[2]int]int)
	for i := range e.execShards {
		sh := &e.execShards[i]
		sh.mu.Lock()
		for k, n := range sh.m {
			out[k] += n
		}
		sh.mu.Unlock()
	}
	return out
}
