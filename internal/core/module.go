package core

import (
	"fmt"

	"repro/internal/event"
)

// Module is one computational vertex of a correlation graph: a model,
// detector or other computation that consumes input changes and may emit
// output changes (Δ-dataflow). The engine guarantees that for any single
// module, Step calls are strictly ordered by phase and never concurrent,
// so a Module may keep unsynchronized internal state. It must be a
// deterministic function of that state and its inputs for executions to
// be serializable and reproducible.
type Module interface {
	// Step executes one phase. The engine calls Step exactly once per
	// phase in which at least one input changed — and, for source
	// vertices, exactly once per phase (the paper's "phase signal").
	// Inputs that did not change this phase read as absent: absence of a
	// message conveys "assumption still holds".
	Step(ctx *Context)
}

// Context is a module's window onto one (vertex, phase) execution. It is
// owned by a single worker for the duration of Step and must not be
// retained after Step returns.
type Context struct {
	vertex int
	phase  int
	nOut   int
	in     []event.Value
	got    []bool
	nGot   int
	emits  []Emission
}

// Emission is one output message produced during a Step: the value sent
// on the out-th output edge (0-based position in the vertex's ascending
// successor list).
type Emission struct {
	Out int
	Val event.Value
}

// Vertex returns the executing vertex's 1-based index.
func (c *Context) Vertex() int { return c.vertex }

// Phase returns the phase being executed.
func (c *Context) Phase() int { return c.phase }

// Ports returns the number of input ports visible this execution. For
// non-source vertices this is the in-degree; for sources it spans the
// externally injected ports.
func (c *Context) Ports() int { return len(c.in) }

// In returns the value received on the given input port this phase.
// ok = false means no message arrived on that port — by the Δ-dataflow
// contract the upstream value is unchanged. Ports outside the visible
// range read as absent.
func (c *Context) In(port int) (event.Value, bool) {
	if port < 0 || port >= len(c.in) {
		return event.Value{}, false
	}
	return c.in[port], c.got[port]
}

// InCount returns how many input ports received a message this phase.
func (c *Context) InCount() int { return c.nGot }

// FirstIn returns the lowest-port received value; ok = false when no
// input arrived (possible only for sources, which execute every phase).
func (c *Context) FirstIn() (event.Value, bool) {
	for p := range c.in {
		if c.got[p] {
			return c.in[p], true
		}
	}
	return event.Value{}, false
}

// Outs returns the number of output edges of the executing vertex.
func (c *Context) Outs() int { return c.nOut }

// Emit sends v on the out-th output edge. Emitting twice on one edge in
// one phase overwrites: an edge carries at most one message per phase,
// matching the one-snapshot-per-phase event model. Emit panics on an
// out-of-range edge: that is a wiring bug, not a data condition.
func (c *Context) Emit(out int, v event.Value) {
	if out < 0 || out >= c.nOut {
		panic(fmt.Sprintf("core: vertex %d emitted on edge %d of %d", c.vertex, out, c.nOut))
	}
	for i := range c.emits {
		if c.emits[i].Out == out {
			c.emits[i].Val = v
			return
		}
	}
	c.emits = append(c.emits, Emission{Out: out, Val: v})
}

// EmitAll sends v on every output edge.
func (c *Context) EmitAll(v event.Value) {
	for o := 0; o < c.nOut; o++ {
		c.Emit(o, v)
	}
}

// Emissions returns the messages emitted so far during this Step. Used
// by executors; modules normally have no reason to call it.
func (c *Context) Emissions() []Emission { return c.emits }

// reset prepares the context for executing (v, p) with the given port
// width and out-degree.
func (c *Context) reset(v, p, ports, outs int) {
	c.vertex, c.phase, c.nOut = v, p, outs
	if cap(c.in) < ports {
		c.in = make([]event.Value, ports)
		c.got = make([]bool, ports)
	}
	c.in = c.in[:ports]
	c.got = c.got[:ports]
	for i := range c.in {
		c.in[i] = event.Value{}
		c.got[i] = false
	}
	c.nGot = 0
	c.emits = c.emits[:0]
}

// deliver records an arriving input. Later messages on the same port
// overwrite (one message per edge per phase).
func (c *Context) deliver(port int, v event.Value) {
	if port < 0 {
		return
	}
	if port >= len(c.in) {
		// Widen for external ports beyond the static in-degree (sources).
		for len(c.in) < port+1 {
			c.in = append(c.in, event.Value{})
			c.got = append(c.got, false)
		}
	}
	if !c.got[port] {
		c.nGot++
	}
	c.in[port] = v
	c.got[port] = true
}

// StepFunc adapts a function to the Module interface, for small inline
// modules in tests and examples.
type StepFunc func(ctx *Context)

// Step implements Module.
func (f StepFunc) Step(ctx *Context) { f(ctx) }
