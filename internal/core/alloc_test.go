package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/graph"
)

// TestSteadyStateAllocs pins the allocation count of the steady-state
// phase loop: once the phase-state free list, inbox slice pool and run
// queue have warmed up, opening a phase, executing every pair in it and
// completing it must not allocate at all. This is the "pooled
// phase/inbox state" guarantee of DESIGN.md §3 — any regression here
// puts map inserts, bitset or snapshot allocations back on the hot path
// under the global lock.
func TestSteadyStateAllocs(t *testing.T) {
	// Diamond with a 4-vertex tail: source fans out to two relays that
	// rejoin, exercising fan-out, fan-in (2 ports) and chain delivery.
	g := graph.New()
	ids := make([]int, 8)
	for i := range ids {
		ids[i] = g.AddVertex("v")
	}
	g.MustEdge(ids[0], ids[1])
	g.MustEdge(ids[0], ids[2])
	g.MustEdge(ids[1], ids[3])
	g.MustEdge(ids[2], ids[3])
	for i := 3; i < 7; i++ {
		g.MustEdge(ids[i], ids[i+1])
	}
	ng, err := g.Number()
	if err != nil {
		t.Fatal(err)
	}
	relay := core.StepFunc(func(ctx *core.Context) {
		if v, ok := ctx.FirstIn(); ok {
			ctx.EmitAll(v)
		}
	})
	src := core.StepFunc(func(ctx *core.Context) {
		ctx.EmitAll(event.Int(int64(ctx.Phase())))
	})
	mods := make([]core.Module, ng.N())
	for i := range mods {
		mods[i] = relay
	}
	mods[0] = src

	// Manual mode keeps the measurement on one goroutine so
	// AllocsPerRun attributes every allocation to the loop under test.
	eng, err := core.New(ng, mods, core.Config{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	onePhase := func() {
		if _, err := eng.StartPhase(nil); err != nil {
			t.Fatal(err)
		}
		for eng.StepOne() {
		}
	}
	// Warm the pools: free list, inbox slices, queue rings, context and
	// fullPhases capacities all reach steady state within a few phases.
	for i := 0; i < 50; i++ {
		onePhase()
	}
	allocs := testing.AllocsPerRun(100, onePhase)
	if allocs > 0 {
		st := eng.Stats()
		perExec := allocs * float64(st.PhasesCompleted) / float64(st.Executions)
		t.Errorf("steady-state phase loop allocates: %.2f allocs/phase (~%.3f per executed pair), want 0",
			allocs, perExec)
	}
}

// TestSteadyStateAllocsConcurrent pins the same guarantee on the
// decentralized commit path: with a worker pool and no observer, the
// warmed phase loop recycles every input slice through its owning
// (vertex, ring-slot) buffer and must not allocate. AllocsPerRun counts
// process-wide mallocs, so worker-goroutine allocations are caught too;
// the threshold tolerates a sub-single stray runtime allocation (e.g. a
// late timer or sudog growth) without letting a real per-phase leak
// through.
func TestSteadyStateAllocsConcurrent(t *testing.T) {
	g := graph.New()
	ids := make([]int, 8)
	for i := range ids {
		ids[i] = g.AddVertex("v")
	}
	g.MustEdge(ids[0], ids[1])
	g.MustEdge(ids[0], ids[2])
	g.MustEdge(ids[1], ids[3])
	g.MustEdge(ids[2], ids[3])
	for i := 3; i < 7; i++ {
		g.MustEdge(ids[i], ids[i+1])
	}
	ng, err := g.Number()
	if err != nil {
		t.Fatal(err)
	}
	relay := core.StepFunc(func(ctx *core.Context) {
		if v, ok := ctx.FirstIn(); ok {
			ctx.EmitAll(v)
		}
	})
	src := core.StepFunc(func(ctx *core.Context) {
		ctx.EmitAll(event.Int(int64(ctx.Phase())))
	})
	mods := make([]core.Module, ng.N())
	for i := range mods {
		mods[i] = relay
	}
	mods[0] = src

	eng, err := core.New(ng, mods, core.Config{Workers: 2, MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	defer eng.Stop()
	onePhase := func() {
		p, err := eng.StartPhase(nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.WaitPhase(p)
	}
	for i := 0; i < 50; i++ {
		onePhase()
	}
	if allocs := testing.AllocsPerRun(100, onePhase); allocs >= 1 {
		t.Errorf("concurrent steady-state phase loop allocates: %.2f allocs/phase, want 0", allocs)
	}
}
