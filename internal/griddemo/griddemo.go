// Package griddemo is the shared workload behind examples/pipeline and
// cmd/fuseworker: a wide-area grid-monitoring computation — regional
// feeds smoothed and screened for anomalies, fused into a national
// alert — plus the worker driver that runs one machine of its
// partitioned deployment over real TCP links. Both binaries build the
// identical graph with identical costs, so every process independently
// computes the same cost-aware plan and they agree on which machine
// owns which vertices without exchanging anything but frames.
package griddemo

import (
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/event"
	"repro/internal/graph"
	"repro/internal/module"
	"repro/internal/netwire"
)

// Regions is the number of regional feeds in the demo graph.
const Regions = 4

// Build constructs the monitoring graph with fresh modules (modules are
// stateful and single-use) and returns the numbered graph, its modules
// in numbered order, per-vertex planner costs, the alert sink and the
// sink's global vertex index (whose owning machine reports alerts).
func Build() (*graph.Numbered, []core.Module, []float64, *module.AlertSink, int) {
	g := graph.New()
	type pending struct {
		id   int
		mod  core.Module
		cost float64
	}
	var vertices []pending
	add := func(name string, mod core.Module, cost float64) int {
		id := g.AddVertex(name)
		vertices = append(vertices, pending{id, mod, cost})
		return id
	}

	// Fusion counts regions currently in anomaly; Δ-inputs arrive only
	// on transitions, so it keeps the latest state per region.
	state := make([]bool, Regions)
	fusion := core.StepFunc(func(ctx *core.Context) {
		if ctx.InCount() == 0 {
			return
		}
		for p := 0; p < ctx.Ports(); p++ {
			if v, ok := ctx.In(p); ok {
				state[p] = v.Bool(false)
			}
		}
		n := 0
		for _, s := range state {
			if s {
				n++
			}
		}
		ctx.EmitAll(event.Float(float64(n)))
	})
	fuse := add("national-fusion", fusion, 2)
	alarm := add("multi-region-alarm", &module.Threshold{Level: 1.5}, 1)
	alerts := &module.AlertSink{}
	sink := add("alerts", alerts, 1)
	g.MustEdge(fuse, alarm)
	g.MustEdge(alarm, sink)

	for r := 0; r < Regions; r++ {
		// Analytics dominate the cost estimate: the planner should pack
		// sources together and spread the detectors.
		feed := add(fmt.Sprintf("region%d/feed", r),
			&module.RandomWalk{Seed: uint64(0xFEED + r), Drift: 1.0}, 1)
		smooth := add(fmt.Sprintf("region%d/smoother", r), module.NewSmoother(0.25), 2)
		detect := add(fmt.Sprintf("region%d/zscore", r), module.NewZScoreDetector(48, 2.5, 48), 4)
		g.MustEdge(feed, smooth)
		g.MustEdge(smooth, detect)
		g.MustEdge(detect, fuse)
	}

	ng, err := g.Number()
	if err != nil {
		log.Fatal(err)
	}
	mods := make([]core.Module, ng.N())
	costs := make([]float64, ng.N())
	for _, p := range vertices {
		mods[ng.IndexOf(p.id)-1] = p.mod
		costs[ng.IndexOf(p.id)-1] = p.cost
	}
	return ng, mods, costs, alerts, ng.IndexOf(sink)
}

// Deploy plans the demo across the given machine count with the
// cost-aware planner, returning the deployment plus the alert sink and
// its global vertex index.
func Deploy(machines, workers, buffer int) (*distrib.Deployment, *module.AlertSink, int, error) {
	ng, mods, costs, alerts, sinkV := Build()
	d, err := distrib.NewDeployment(ng, mods, distrib.Config{
		Machines: machines, WorkersPerMachine: workers,
		MaxInFlight: 16, Buffer: buffer,
		Planner: distrib.CostAware{}, Costs: costs,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return d, alerts, sinkV, nil
}

// WorkerOptions configures one machine's standalone run.
type WorkerOptions struct {
	// Machine is this process's machine index, 0-based.
	Machine int
	// Machines is the total machine count of the deployment.
	Machines int
	// Peers[m] is the address machine m listens on for inbound links.
	Peers []string
	// Phases is the number of phases to run.
	Phases int
	// Workers is this machine's compute-thread count.
	Workers int
	// Buffer is the per-link frame depth (credit window).
	Buffer int
	// DialTimeout bounds how long to keep retrying a peer that has not
	// started listening yet. Defaults to 15s.
	DialTimeout time.Duration
	// Log receives progress lines. Defaults to discarding.
	Log io.Writer
}

// RunWorker runs one machine of the demo deployment over real TCP
// links: it listens for every upstream machine's connection on its own
// peer address, dials every downstream machine (retrying while peers
// start up), and drives the machine to completion. Every worker
// process computes the identical plan from the shared workload, so the
// only bytes exchanged are handshakes, frames and credits.
//
// When this machine owns the alert sink, ownsSink is true and alerts
// lists the phases at which the national alarm fired (it is what a
// single-process run produces, bit for bit — serializability holds
// across the wire).
func RunWorker(o WorkerOptions) (alerts []int, ownsSink bool, err error) {
	if o.Log == nil {
		o.Log = io.Discard
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	if o.Machine < 0 || o.Machine >= o.Machines || len(o.Peers) != o.Machines {
		return nil, false, fmt.Errorf("griddemo: machine %d of %d with %d peers", o.Machine, o.Machines, len(o.Peers))
	}
	d, sink, sinkV, err := Deploy(o.Machines, o.Workers, o.Buffer)
	if err != nil {
		return nil, false, err
	}
	m := o.Machine
	up, down := d.Upstream(m), d.Downstream(m)
	fmt.Fprintf(o.Log, "machine %d/%d: plan starts=%v, %d upstream, %d downstream\n",
		m, o.Machines, d.Starts(), len(up), len(down))

	// Listen before dialing, so peers that dial us early are not lost.
	var ln *netwire.Listener
	if len(up) > 0 {
		ln, err = netwire.Listen(o.Peers[m])
		if err != nil {
			return nil, false, err
		}
		defer ln.Close()
	}

	// Dial every downstream machine, retrying while it boots.
	out := make(map[int]distrib.Transport, len(down))
	for _, dst := range down {
		var sl *netwire.SendLink
		deadline := time.Now().Add(o.DialTimeout)
		for {
			sl, err = netwire.Dial(o.Peers[dst], m, dst, d.Buffer())
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return nil, false, fmt.Errorf("griddemo: machine %d: dialing machine %d at %s: %w", m, dst, o.Peers[dst], err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		out[dst] = distrib.NewSendTransport(m, dst, sl)
		fmt.Fprintf(o.Log, "machine %d: connected to machine %d (%s)\n", m, dst, o.Peers[dst])
	}

	// Accept one inbound link per upstream machine, whichever order
	// they arrive in.
	in := make(map[int]distrib.Transport, len(up))
	want := make(map[int]bool, len(up))
	for _, u := range up {
		want[u] = true
	}
	for len(in) < len(up) {
		rl, err := ln.Accept()
		if err != nil {
			return nil, false, fmt.Errorf("griddemo: machine %d: accepting upstream link: %w", m, err)
		}
		hs := rl.Handshake()
		if hs.To != m || !want[hs.From] || in[hs.From] != nil {
			rl.Close()
			return nil, false, fmt.Errorf("griddemo: machine %d: unexpected link %d->%d", m, hs.From, hs.To)
		}
		in[hs.From] = distrib.NewRecvTransport(rl)
		fmt.Fprintf(o.Log, "machine %d: accepted link from machine %d\n", m, hs.From)
	}

	t0 := time.Now()
	st, err := d.RunMachine(m, make([][]core.ExtInput, o.Phases), in, out)
	if err != nil {
		return nil, false, fmt.Errorf("griddemo: machine %d: %w", m, err)
	}
	fmt.Fprintf(o.Log, "machine %d: %d executions, %d phases in %v\n",
		m, st.Executions, st.PhasesCompleted, time.Since(t0).Round(time.Millisecond))
	if graph.PartitionOf(d.Starts(), sinkV) == m {
		return sink.Alerts, true, nil
	}
	return nil, false, nil
}
