// Package griddemo is the shared workload behind examples/pipeline and
// cmd/fuseworker: a wide-area grid-monitoring computation — regional
// feeds smoothed and screened for anomalies, fused into a national
// alert — plus the worker drivers that run one machine of its
// partitioned deployment over real TCP links, either statically (one
// plan for the whole run) or under the rebalancing control plane
// (machine 0 coordinates epoch switches, DESIGN.md §9). Every worker
// process builds the identical graph with identical costs, so the
// processes agree on the workload without exchanging anything but
// frames; in rebalancing runs the plan itself comes from the
// coordinator over the control channel.
package griddemo

import (
	"fmt"
	"io"
	"log"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/graph"
	"repro/internal/module"
	"repro/internal/netwire"
	"repro/internal/spec"
	"repro/internal/wal"
)

// Regions is the number of regional feeds in the demo graph.
const Regions = 4

// Workload is a worker-runnable computation: the graph, one module per
// vertex, planner costs, and where the alert history (if any) lives.
type Workload struct {
	// Graph is the numbered computation graph.
	Graph *graph.Numbered
	// Mods holds the module for each global vertex (Mods[v-1]).
	Mods []core.Module
	// Costs estimates per-vertex work for the planner.
	Costs []float64
	// Alerts is the alert sink module, nil when the workload has none.
	Alerts *module.AlertSink
	// SinkVertex is the alert sink's global vertex index (0 = none).
	SinkVertex int
}

// driftMod wraps a module with a deterministic compute-grain drift:
// after phase After every Step burns ~Spin of CPU before delegating.
// Output is bit-identical to the bare module — the drift is pure cost,
// the signal the rebalancer exists to chase. It migrates through the
// inner module's Snapshotter.
type driftMod struct {
	inner core.Module
	after int
	spin  time.Duration
}

func (d *driftMod) Step(ctx *core.Context) {
	if ctx.Phase() > d.after {
		t0 := time.Now()
		for time.Since(t0) < d.spin {
		}
	}
	d.inner.Step(ctx)
}

func (d *driftMod) SnapshotState() ([]byte, error) {
	return d.inner.(core.Snapshotter).SnapshotState()
}

func (d *driftMod) RestoreState(state []byte) error {
	return d.inner.(core.Snapshotter).RestoreState(state)
}

// Build constructs the monitoring graph with fresh modules (modules are
// stateful and single-use) and returns the numbered graph, its modules
// in numbered order, per-vertex planner costs, the alert sink and the
// sink's global vertex index (whose owning machine reports alerts).
func Build() (*graph.Numbered, []core.Module, []float64, *module.AlertSink, int) {
	w := DemoWorkload(0)
	return w.Graph, w.Mods, w.Costs, w.Alerts, w.SinkVertex
}

// DemoWorkload builds the grid-monitoring demo. When driftAt is
// positive, region 0's detector drifts: past that phase it burns an
// extra compute grain per Step, so a rebalancing run has genuine
// mid-run skew to chase — with outputs untouched, since the drift is
// pure cost. Every module of the demo implements core.Snapshotter, so
// any vertex can migrate between worker processes.
func DemoWorkload(driftAt int) Workload {
	g := graph.New()
	type pending struct {
		id   int
		mod  core.Module
		cost float64
	}
	var vertices []pending
	add := func(name string, mod core.Module, cost float64) int {
		id := g.AddVertex(name)
		vertices = append(vertices, pending{id, mod, cost})
		return id
	}

	// Fusion counts regions currently in anomaly; Δ-inputs arrive only
	// on transitions, so it keeps the latest state per region.
	fuse := add("national-fusion", &module.FusionCount{}, 2)
	alarm := add("multi-region-alarm", &module.Threshold{Level: 1.5}, 1)
	alerts := &module.AlertSink{}
	sink := add("alerts", alerts, 1)
	g.MustEdge(fuse, alarm)
	g.MustEdge(alarm, sink)

	for r := 0; r < Regions; r++ {
		// Analytics dominate the cost estimate: the planner should pack
		// sources together and spread the detectors.
		feed := add(fmt.Sprintf("region%d/feed", r),
			&module.RandomWalk{Seed: uint64(0xFEED + r), Drift: 1.0}, 1)
		smooth := add(fmt.Sprintf("region%d/smoother", r), module.NewSmoother(0.25), 2)
		var detect core.Module = module.NewZScoreDetector(48, 2.5, 48)
		if r == 0 && driftAt > 0 {
			detect = &driftMod{inner: detect, after: driftAt, spin: 150 * time.Microsecond}
		}
		dv := add(fmt.Sprintf("region%d/zscore", r), detect, 4)
		g.MustEdge(feed, smooth)
		g.MustEdge(smooth, dv)
		g.MustEdge(dv, fuse)
	}

	ng, err := g.Number()
	if err != nil {
		log.Fatal(err)
	}
	w := Workload{
		Graph:      ng,
		Mods:       make([]core.Module, ng.N()),
		Costs:      make([]float64, ng.N()),
		Alerts:     alerts,
		SinkVertex: ng.IndexOf(sink),
	}
	for _, p := range vertices {
		w.Mods[ng.IndexOf(p.id)-1] = p.mod
		w.Costs[ng.IndexOf(p.id)-1] = p.cost
	}
	return w
}

// SpecWorkload loads a workload from an XML computation spec
// (internal/spec): vertices become registered modules, the optional
// per-vertex "cost" parameter feeds the planner, and the first
// alert-sink vertex (if any) reports the alert history. machines is
// the deployment's machine count — a spec that pins a different
// machine count, or has fewer vertices than machines, is refused with
// the mismatch named. The returned phase count is the spec's (0 when
// the spec does not set one).
func SpecWorkload(path string, machines int) (Workload, int, error) {
	s, err := spec.ParseFile(path)
	if err != nil {
		return Workload{}, 0, err
	}
	if s.Simulation.Machines > 0 && s.Simulation.Machines != machines {
		return Workload{}, 0, fmt.Errorf("griddemo: spec %q pins %d machines but the deployment has %d (-peers entries must match the spec)", s.Name, s.Simulation.Machines, machines)
	}
	b, err := s.Build(module.NewRegistry())
	if err != nil {
		return Workload{}, 0, err
	}
	if b.Graph.N() < machines {
		return Workload{}, 0, fmt.Errorf("griddemo: spec %q has %d vertices for %d machines", s.Name, b.Graph.N(), machines)
	}
	costs, err := s.Costs(b)
	if err != nil {
		return Workload{}, 0, err
	}
	w := Workload{Graph: b.Graph, Mods: b.Modules, Costs: costs}
	for v, m := range b.Modules {
		if sink, ok := m.(*module.AlertSink); ok {
			w.Alerts = sink
			w.SinkVertex = v + 1
			break
		}
	}
	return w, s.Simulation.Phases, nil
}

// Deploy plans the demo across the given machine count with the
// cost-aware planner, returning the deployment plus the alert sink and
// its global vertex index.
func Deploy(machines, workers, buffer int) (*distrib.Deployment, *module.AlertSink, int, error) {
	w := DemoWorkload(0)
	d, err := distrib.NewDeployment(w.Graph, w.Mods, distrib.Config{
		Machines: machines, WorkersPerMachine: workers,
		MaxInFlight: 16, Buffer: buffer,
		Planner: distrib.CostAware{}, Costs: w.Costs,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return d, w.Alerts, w.SinkVertex, nil
}

// WorkerOptions configures one machine's standalone run.
type WorkerOptions struct {
	// Machine is this process's machine index, 0-based.
	Machine int
	// Machines is the total machine count of the deployment.
	Machines int
	// Peers[m] is the address machine m listens on for inbound links
	// (and, for machine 0, the coordinator's control channel).
	Peers []string
	// Phases is the number of phases to run.
	Phases int
	// Workers is this machine's compute-thread count.
	Workers int
	// Buffer is the per-link frame depth (credit window).
	Buffer int
	// Workload overrides the compiled-in demo graph (e.g. one loaded
	// from a spec file). Leave zero to run the demo.
	Workload *Workload
	// Rebalance coordinates mid-run repartitioning across the worker
	// processes: machine 0 runs the Coordinator (election is by lowest
	// machine index), every worker serves a control-plane participant,
	// and vertices migrate between processes at epoch barriers.
	Rebalance bool
	// ForceEvery, when positive, triggers an epoch switch each time an
	// epoch has started this many phases — the deterministic demo/test
	// trigger. Zero leaves the drift monitor's skew detection in
	// charge.
	ForceEvery int
	// DriftAt, when positive, makes region 0's detector genuinely
	// drift (extra compute grain past that phase) so a rebalancing
	// demo has skew worth chasing. Demo workload only.
	DriftAt int
	// DialTimeout bounds how long to keep retrying a peer that has not
	// started listening yet. Defaults to 15s.
	DialTimeout time.Duration
	// WALDir, when set, makes a rebalancing run durable (DESIGN.md
	// §10): each worker appends fsynced epoch checkpoints to
	// WALDir/machine-<m>.wal, a local epoch failure parks the process
	// instead of tearing the flock down, and machine 0's coordinator
	// accepts crash rejoins mid-run. Requires Rebalance.
	WALDir string
	// Recover makes this worker rejoin a running flock from its WAL
	// instead of joining the initial launch — the restarted-process
	// path. Requires WALDir; machine 0 (the coordinator) cannot
	// recover.
	Recover bool
	// RecoverWindow bounds how long the coordinator waits for a
	// crashed worker to rejoin before aborting with the original
	// failure. Zero takes the control plane's default (30s).
	RecoverWindow time.Duration
	// WorkloadName identifies the workload inside the WAL header, so a
	// recovery against logs written under a different workload (e.g.
	// another -spec) is refused instead of replayed. Defaults to
	// "demo".
	WorkloadName string
	// Log receives progress lines. Defaults to discarding.
	Log io.Writer
}

// WorkerResult reports one worker process's run.
type WorkerResult struct {
	// Alerts is the alert-phase history, set only when OwnsSink.
	Alerts []int
	// OwnsSink reports whether this machine owned the alert sink at
	// the end of the run (migrations included).
	OwnsSink bool
	// Rebalances records the run's epoch switches; only machine 0 (the
	// coordinator) fills it.
	Rebalances []distrib.RebalanceEvent
	// Recoveries records the run's crash recoveries (durable runs
	// only); only machine 0 (the coordinator) fills it.
	Recoveries []distrib.RecoveryEvent
}

// backoffFor sizes the shared dial-retry schedule so its worst-case
// cumulative wait covers the requested boot window (the 4096-attempt
// ceiling — over an hour of 1s retries — only guards against an
// absurd timeout, not any realistic one).
func backoffFor(timeout time.Duration) netwire.Backoff {
	b := netwire.Backoff{Base: 50 * time.Millisecond, Factor: 1.5, Max: time.Second, Attempts: 2}
	for b.Total() < timeout && b.Attempts < 4096 {
		b.Attempts++
	}
	return b
}

// RunWorker runs one machine of a partitioned deployment over real TCP
// links: it listens on its own peer address, dials its downstream
// peers (retrying under a bounded backoff while they boot), and drives
// the machine to completion. Every worker process builds the identical
// workload, so a static run exchanges nothing but handshakes, frames
// and credits; a rebalancing run (Options.Rebalance) additionally
// speaks the control-plane protocol with machine 0, whose coordinator
// quiesces the flock at epoch barriers, re-plans on measured costs and
// migrates vertex state between the processes.
//
// When this machine owns the alert sink at the end of the run, the
// result carries the alert-phase history — bit-identical to a
// single-process run of the same graph, rebalanced or not.
func RunWorker(o WorkerOptions) (WorkerResult, error) {
	if o.Log == nil {
		o.Log = io.Discard
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	if o.Machine < 0 || o.Machine >= o.Machines || len(o.Peers) != o.Machines {
		return WorkerResult{}, fmt.Errorf("griddemo: machine %d of %d with %d peers", o.Machine, o.Machines, len(o.Peers))
	}
	if o.WALDir != "" && !o.Rebalance {
		return WorkerResult{}, fmt.Errorf("griddemo: a WAL requires the rebalancing control plane (checkpoints ride epoch launches)")
	}
	if o.Recover {
		if o.WALDir == "" {
			return WorkerResult{}, fmt.Errorf("griddemo: recovery requires a WAL directory")
		}
		if o.Machine == 0 {
			return WorkerResult{}, fmt.Errorf("griddemo: machine 0 hosts the coordinator and cannot rejoin a running flock (restart the whole run instead)")
		}
	}
	var w Workload
	if o.Workload != nil {
		w = *o.Workload
	} else {
		w = DemoWorkload(o.DriftAt)
	}
	host, err := distrib.NewWireHost(o.Machine, o.Peers, backoffFor(o.DialTimeout))
	if err != nil {
		return WorkerResult{}, err
	}
	defer host.Close()
	if o.Rebalance {
		return runRebalancingWorker(o, w, host)
	}
	return runStaticWorker(o, w, host)
}

// runStaticWorker is the single-plan path: every process computes the
// identical cost-aware plan and runs its machine once.
func runStaticWorker(o WorkerOptions, w Workload, host *distrib.WireHost) (WorkerResult, error) {
	m := o.Machine
	d, err := distrib.NewDeployment(w.Graph, w.Mods, distrib.Config{
		Machines: o.Machines, WorkersPerMachine: o.Workers,
		MaxInFlight: 16, Buffer: o.Buffer,
		Planner: distrib.CostAware{}, Costs: w.Costs,
	})
	if err != nil {
		return WorkerResult{}, err
	}
	fmt.Fprintf(o.Log, "machine %d/%d: plan starts=%v, %d upstream, %d downstream\n",
		m, o.Machines, d.Starts(), len(d.Upstream(m)), len(d.Downstream(m)))
	in, out, err := host.Wire(d, 0)
	if err != nil {
		return WorkerResult{}, fmt.Errorf("griddemo: machine %d: %w", m, err)
	}
	t0 := time.Now()
	st, err := d.RunMachine(m, make([][]core.ExtInput, o.Phases), in, out)
	if err != nil {
		return WorkerResult{}, fmt.Errorf("griddemo: machine %d: %w", m, err)
	}
	fmt.Fprintf(o.Log, "machine %d: %d executions, %d phases in %v\n",
		m, st.Executions, st.PhasesCompleted, time.Since(t0).Round(time.Millisecond))
	if w.SinkVertex > 0 && graph.PartitionOf(d.Starts(), w.SinkVertex) == m {
		return WorkerResult{Alerts: w.Alerts.Alerts, OwnsSink: true}, nil
	}
	return WorkerResult{}, nil
}

// runRebalancingWorker is the coordinated path: machine 0 hosts the
// Coordinator (plus its own participant over an in-process control
// pipe); every other machine dials machine 0's control channel and
// serves a participant. Plans — including the initial one — arrive
// over the control plane, and migrating vertex state crosses it as
// snapshot frames.
func runRebalancingWorker(o WorkerOptions, w Workload, host *distrib.WireHost) (WorkerResult, error) {
	m := o.Machine
	wc := distrib.WorkerConfig{
		Machine: m,
		Graph:   w.Graph,
		Mods:    w.Mods,
		Config: distrib.Config{
			WorkersPerMachine: o.Workers,
			MaxInFlight:       16,
			Buffer:            o.Buffer,
		},
		Batches: make([][]core.ExtInput, o.Phases),
		Wire:    host.Wire,
		Log:     o.Log,
	}
	if o.WALDir != "" {
		name := o.WorkloadName
		if name == "" {
			name = "demo"
		}
		// The signature binds the log to one workload identity: a
		// recovery against a WAL written under another spec, machine
		// count or phase count is refused at Open, not replayed.
		sig := fmt.Sprintf("%s/machines=%d/phases=%d", name, o.Machines, o.Phases)
		wlog, err := wal.Open(filepath.Join(o.WALDir, fmt.Sprintf("machine-%d.wal", m)), m, sig)
		if err != nil {
			return WorkerResult{}, fmt.Errorf("griddemo: machine %d: %w", m, err)
		}
		defer wlog.Close()
		wc.WAL = wlog
		wc.Rejoin = o.Recover
	}

	if m != 0 {
		ch, err := host.DialCtl(0)
		if err != nil {
			return WorkerResult{}, fmt.Errorf("griddemo: machine %d: %w", m, err)
		}
		rep, err := serveWorker(ch, wc, o.Log)
		if err != nil {
			return WorkerResult{}, err
		}
		return resultFor(w, rep, m), nil
	}

	// Machine 0: coordinator election is by lowest machine index. Its
	// own participant rides an in-process control pipe; every other
	// machine dials in.
	parts := make([]distrib.Participant, o.Machines)
	coordCh, selfCh := distrib.NewCtlPipe()
	parts[0] = distrib.NewRemoteParticipant(coordCh, "machine 0")
	for i := 1; i < o.Machines; i++ {
		conn, err := host.AcceptCtl(o.DialTimeout + 15*time.Second)
		if err != nil {
			return WorkerResult{}, fmt.Errorf("griddemo: coordinator: %w", err)
		}
		hs := conn.Handshake()
		if hs.To != 0 || hs.From <= 0 || hs.From >= o.Machines || parts[hs.From] != nil {
			conn.Close()
			return WorkerResult{}, fmt.Errorf("griddemo: coordinator: unexpected control channel %d->%d", hs.From, hs.To)
		}
		parts[hs.From] = distrib.NewRemoteParticipant(conn, fmt.Sprintf("machine %d", hs.From))
		fmt.Fprintf(o.Log, "coordinator: machine %d joined the control plane\n", hs.From)
	}
	rcfg := distrib.RebalanceConfig{
		ForceEvery:   o.ForceEvery,
		MinRemaining: o.Phases / 6,
	}
	co := &distrib.Coordinator{
		Graph:        w.Graph,
		Costs:        w.Costs,
		Machines:     o.Machines,
		Phases:       o.Phases,
		Planner:      distrib.CostAware{},
		Rebalance:    rcfg,
		Participants: parts,
	}
	var stopRejoins chan struct{}
	if o.WALDir != "" {
		// Durable run: keep accepting control channels for the whole
		// run, so a crashed worker's restarted process can dial back in.
		// Each accept must open with the rejoin hello; anything else is
		// a stray and is dropped.
		rejoins := make(chan distrib.RejoinOffer, o.Machines)
		stopRejoins = make(chan struct{})
		co.Rejoins = rejoins
		co.Recovery = distrib.RecoverConfig{Window: o.RecoverWindow}
		go func() {
			for {
				conn, err := host.AcceptCtl(500 * time.Millisecond)
				if err != nil {
					select {
					case <-stopRejoins:
						return
					default:
						continue // timeout tick; keep listening
					}
				}
				hs := conn.Handshake()
				hello, err := conn.Recv()
				if err != nil || hello.Kind != netwire.FrameRejoin ||
					hs.From <= 0 || hs.From >= o.Machines {
					conn.Close()
					continue
				}
				fmt.Fprintf(o.Log, "coordinator: machine %d offers to rejoin (stable epoch %d, has checkpoint %v)\n",
					hs.From, hello.Epoch, hello.Done)
				select {
				case rejoins <- distrib.RejoinOffer{Machine: hs.From, Ch: conn}:
				case <-stopRejoins:
					conn.Close()
					return
				}
			}
		}()
	}
	type coDone struct {
		events []distrib.RebalanceEvent
		err    error
	}
	coCh := make(chan coDone, 1)
	go func() {
		events, err := co.Run()
		coCh <- coDone{events, err}
	}()
	rep, serveErr := serveWorker(selfCh, wc, o.Log)
	cd := <-coCh
	if stopRejoins != nil {
		close(stopRejoins)
	}
	if cd.err != nil {
		return WorkerResult{}, fmt.Errorf("griddemo: coordinator: %w", cd.err)
	}
	if serveErr != nil {
		return WorkerResult{}, serveErr
	}
	for _, ev := range cd.events {
		fmt.Fprintf(o.Log, "coordinator: epoch switch @ phase %d: starts %v -> %v, %d vertices moved (%d serialized, %d bytes)\n",
			ev.Barrier, ev.FromStarts, ev.ToStarts, ev.Moved, ev.Serialized, ev.HandoffBytes)
	}
	for _, rv := range co.Recoveries() {
		fmt.Fprintf(o.Log, "coordinator: recovery: machines %v rejoined, rolled back to epoch %d (phase %d), relaunched as epoch %d in %v\n",
			rv.Machines, rv.StableEpoch, rv.Base, rv.NextEpoch, rv.Wall.Round(time.Millisecond))
	}
	res := resultFor(w, rep, m)
	res.Rebalances = cd.events
	res.Recoveries = co.Recoveries()
	return res, nil
}

// serveWorker drives one participant to completion with progress
// logging.
func serveWorker(ch distrib.CtlChannel, wc distrib.WorkerConfig, logw io.Writer) (distrib.ParticipantReport, error) {
	t0 := time.Now()
	rep, err := distrib.ServeParticipant(ch, wc)
	if err != nil {
		return rep, err
	}
	fmt.Fprintf(logw, "machine %d: %d executions, %d phases, %d epochs in %v\n",
		wc.Machine, rep.Stats.Executions, rep.Stats.PhasesCompleted, rep.Epochs, time.Since(t0).Round(time.Millisecond))
	return rep, nil
}

// resultFor assembles a worker's result from its final partition:
// after any number of migrations, the alert history belongs to the
// machine owning the sink vertex at the end of the run.
func resultFor(w Workload, rep distrib.ParticipantReport, m int) WorkerResult {
	if w.SinkVertex > 0 && rep.FinalStarts != nil &&
		graph.PartitionOf(rep.FinalStarts, w.SinkVertex) == m {
		return WorkerResult{Alerts: w.Alerts.Alerts, OwnsSink: true}
	}
	return WorkerResult{}
}
